package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/deck"
	"repro/internal/fem"
	"repro/internal/stack"
	"repro/internal/units"
)

// sweepBody marshals a SweepRequest for the 6-point Model A radius sweep the
// streaming tests share.
func sweepBody(t *testing.T, mutate func(*SweepRequest)) []byte {
	t.Helper()
	req := SweepRequest{
		Block:  stack.DefaultBlock(),
		Param:  "r",
		From:   units.UM(5),
		To:     units.UM(20),
		Points: 6,
		Models: deck.ModelSpec{Model: "a"},
	}
	if mutate != nil {
		mutate(&req)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postStream posts a streaming sweep and returns the decoded progress
// records and the final record.
func postStream(t *testing.T, url string, body []byte) ([]deck.SweepProgress, sweepStreamFinal) {
	t.Helper()
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	var (
		progress []deck.SweepProgress
		final    sweepStreamFinal
		sawFinal bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if sawFinal {
			t.Fatalf("record after the final one: %s", line)
		}
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Done {
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatal(err)
			}
			sawFinal = true
			continue
		}
		var p deck.SweepProgress
		if err := json.Unmarshal(line, &p); err != nil {
			t.Fatal(err)
		}
		progress = append(progress, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawFinal {
		t.Fatal("stream ended without a final record")
	}
	return progress, final
}

// TestSweepStreamsNDJSONProgress: a streamed /sweep delivers one progress
// record per point and a final record whose embedded report is byte-identical
// to the non-streamed response for the same request.
func TestSweepStreamsNDJSONProgress(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{Workers: 2})
	progress, final := postStream(t, ts.URL, sweepBody(t, func(r *SweepRequest) { r.Stream = true }))
	if len(progress) != 6 {
		t.Fatalf("got %d progress records, want 6", len(progress))
	}
	seen := make(map[int]bool)
	for _, p := range progress {
		if p.Total != 6 {
			t.Errorf("point %d: total %d, want 6", p.Index, p.Total)
		}
		if p.Err != "" {
			t.Errorf("point %d failed: %s", p.Index, p.Err)
		}
		if p.Label == "" {
			t.Errorf("point %d has no label", p.Index)
		}
		if seen[p.Index] {
			t.Errorf("point %d reported twice", p.Index)
		}
		seen[p.Index] = true
	}
	for i := 0; i < 6; i++ {
		if !seen[i] {
			t.Errorf("point %d never reported", i)
		}
	}
	if final.Err != "" {
		t.Fatalf("final record carries error: %s", final.Err)
	}

	status, plain := post(t, ts.URL+"/sweep", sweepBody(t, nil))
	if status != http.StatusOK {
		t.Fatalf("non-streamed sweep: status %d", status)
	}
	if final.Report != string(plain) {
		t.Errorf("streamed report differs from one-shot response:\n--- stream ---\n%s\n--- plain ---\n%s", final.Report, plain)
	}
	if got := reg.Counter("serve.sweep.streams").Value(); got != 1 {
		t.Errorf("serve.sweep.streams = %d, want 1", got)
	}
}

// TestSweepStreamShard: a sharded stream reports exactly the shard's points
// (global indices) and its report carries the shard header.
func TestSweepStreamShard(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 2})
	// 12 points × 1 model = 12 jobs; chains of 8 give shard 2/2 = [8, 12).
	body := sweepBody(t, func(r *SweepRequest) { r.Points = 12; r.Shard = "2/2"; r.Stream = true })
	progress, final := postStream(t, ts.URL, body)
	if len(progress) != 4 {
		t.Fatalf("shard 2/2 of 12 points streamed %d records, want 4", len(progress))
	}
	for _, p := range progress {
		if p.Index < 8 || p.Index >= 12 {
			t.Errorf("point %d outside shard range [8,12)", p.Index)
		}
		if p.Total != 12 {
			t.Errorf("point %d: total %d, want 12", p.Index, p.Total)
		}
	}
	if final.Err != "" {
		t.Fatalf("final record carries error: %s", final.Err)
	}
	if !strings.Contains(final.Report, "shard: 2/2 (4 of 12 values)") {
		t.Errorf("shard report missing shard header:\n%s", final.Report)
	}
}

// TestSweepShardPartitionsReport: the one-shot sharded responses jointly
// carry exactly the unsharded report's value rows, each under its shard
// header; a malformed shard spec is a 400.
func TestSweepShardPartitionsReport(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 2})
	status, full := post(t, ts.URL+"/sweep", sweepBody(t, func(r *SweepRequest) { r.Points = 12 }))
	if status != http.StatusOK {
		t.Fatalf("unsharded sweep: status %d, body:\n%s", status, full)
	}
	var shardRows []string
	for _, spec := range []string{"1/2", "2/2"} {
		status, body := post(t, ts.URL+"/sweep", sweepBody(t, func(r *SweepRequest) { r.Points = 12; r.Shard = spec }))
		if status != http.StatusOK {
			t.Fatalf("shard %s: status %d, body:\n%s", spec, status, body)
		}
		if !strings.Contains(string(body), fmt.Sprintf("shard: %s", spec)) {
			t.Errorf("shard %s response missing shard header:\n%s", spec, body)
		}
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "  r=") {
				shardRows = append(shardRows, line)
			}
		}
	}
	var fullRows []string
	for _, line := range strings.Split(string(full), "\n") {
		if strings.HasPrefix(line, "  r=") {
			fullRows = append(fullRows, line)
		}
	}
	if len(fullRows) != 12 {
		t.Fatalf("unsharded report has %d value rows, want 12:\n%s", len(fullRows), full)
	}
	if strings.Join(shardRows, "\n") != strings.Join(fullRows, "\n") {
		t.Errorf("shard rows differ from unsharded rows:\n--- shards ---\n%s\n--- full ---\n%s",
			strings.Join(shardRows, "\n"), strings.Join(fullRows, "\n"))
	}

	status, body := post(t, ts.URL+"/sweep", sweepBody(t, func(r *SweepRequest) { r.Shard = "5/2" }))
	if status != http.StatusBadRequest {
		t.Errorf("bad shard spec: status %d, want 400; body:\n%s", status, body)
	}
}

// TestWarmPoolKeysOnGridTopology is the regression test for the warm-pool
// key: two scenarios with the same plane count but different grid topologies
// (thin vs thick bonding layers cross the fem thin-span threshold) must pool
// under distinct keys and each get their own warm hits — under the old
// plane-count key they shared one entry and evicted each other.
func TestWarmPoolKeysOnGridTopology(t *testing.T) {
	s, ts, reg := newTestServer(t, Config{Workers: 1})
	thin := []byte(`{"models": {"model": "ref"}}`)                         // t_b = 1 µm: bond spans thin
	thick := []byte(`{"block": {"TB": 3e-6}, "models": {"model": "ref"}}`) // t_b = 3 µm: bond spans normal

	// The premise: equal plane counts, different topologies.
	thinStack, err := stack.DefaultBlock().Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := stack.DefaultBlock()
	cfg.TB = units.UM(3)
	thickStack, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(thinStack.Planes) != len(thickStack.Planes) {
		t.Fatalf("premise broken: %d vs %d planes", len(thinStack.Planes), len(thickStack.Planes))
	}
	tt, err := fem.GridTopology(thinStack)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := fem.GridTopology(thickStack)
	if err != nil {
		t.Fatal(err)
	}
	if tt == tk {
		t.Fatalf("premise broken: topologies equal (%s)", tt)
	}

	for _, body := range [][]byte{thin, thick} {
		if status, got := post(t, ts.URL+"/solve", body); status != http.StatusOK {
			t.Fatalf("cold solve: status %d, body:\n%s", status, got)
		}
	}
	s.pool.mu.Lock()
	keys := len(s.pool.idle)
	s.pool.mu.Unlock()
	if keys != 2 {
		t.Fatalf("pool holds %d topology keys after two different-topology solves, want 2", keys)
	}

	cold := make(map[string][]byte)
	hits0 := reg.Counter("serve.pool.hits").Value()
	for name, body := range map[string][]byte{"thin": thin, "thick": thick} {
		status, got := post(t, ts.URL+"/solve", body)
		if status != http.StatusOK {
			t.Fatalf("warm %s solve: status %d", name, status)
		}
		cold[name] = got
	}
	if hits := reg.Counter("serve.pool.hits").Value() - hits0; hits != 2 {
		t.Errorf("warm hits = %d, want 2 (one per topology)", hits)
	}
}

// TestRejectedRequestRefundsAdmissionToken: requests rejected before solving
// (malformed or oversized bodies) give their admission token back, so with a
// frozen 1-token bucket a valid solve still goes through after a burst of
// garbage — and the bucket is empty afterwards.
func TestRejectedRequestRefundsAdmissionToken(t *testing.T) {
	s, ts, reg := newTestServer(t, Config{Workers: 1, Rate: 1e-4, Burst: 1})
	base := time.Now()
	s.bucket.now = func() time.Time { return base } // frozen: no refill, ever

	if status, _ := post(t, ts.URL+"/solve", []byte(`{`)); status != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", status)
	}
	if status, _ := post(t, ts.URL+"/deck", bytes.Repeat([]byte("*"), maxBodyBytes+1)); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", status)
	}
	if got := reg.Counter("serve.refunded").Value(); got != 2 {
		t.Errorf("serve.refunded = %d, want 2", got)
	}

	status, body := post(t, ts.URL+"/solve", []byte(`{"models": {"model": "a"}}`))
	if status != http.StatusOK {
		t.Fatalf("valid request after refunds: status %d, body:\n%s (token was burned by rejected requests)", status, body)
	}
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(`{"models": {"model": "a"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("bucket should now be empty: status %d, want 429", resp.StatusCode)
	}
}
