package serve

import (
	"context"
	"errors"
	"sync"
)

// errClientGone reports that the waiting request's client disconnected
// before the coalesced execution finished; the handler returns without
// writing (the connection is gone).
var errClientGone = errors.New("serve: client disconnected before the result was ready")

// response is one finished execution, shared verbatim by every request that
// coalesced onto it.
type response struct {
	status      int
	contentType string
	body        []byte
}

// flightGroup coalesces concurrent executions of the same canonical request
// key into one solve, in the spirit of x/sync/singleflight (hand-rolled: the
// repository is stdlib-only). Joiners share the leader's response bytes.
//
// Cancellation is reference-counted: the execution context stays alive while
// at least one request is waiting on the call and is cancelled when the last
// waiter disconnects, so an abandoned solve stops between CG iterations
// instead of running to completion for nobody.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	res     response
	waiters int
	cancel  context.CancelFunc
}

// do executes fn under key, coalescing with an in-flight identical call.
// The returned bool reports whether this request joined an existing call.
// When rctx (the request context) ends first, do returns errClientGone and
// — if this was the last waiter — cancels the execution.
func (g *flightGroup) do(rctx context.Context, key string, fn func(ctx context.Context) response) (response, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	c, shared := g.m[key]
	if !shared {
		ctx, cancel := context.WithCancel(context.Background())
		c = &flightCall{done: make(chan struct{}), cancel: cancel}
		g.m[key] = c
		go func() {
			c.res = fn(ctx)
			cancel()
			g.mu.Lock()
			if g.m[key] == c {
				delete(g.m, key)
			}
			g.mu.Unlock()
			close(c.done)
		}()
	}
	c.waiters++
	g.mu.Unlock()

	select {
	case <-c.done:
		return c.res, shared, nil
	case <-rctx.Done():
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			// Last interested client is gone: stop the solve and retire the
			// call so a later identical request starts fresh instead of
			// inheriting a cancelled result.
			c.cancel()
			if g.m[key] == c {
				delete(g.m, key)
			}
		}
		g.mu.Unlock()
		return response{}, shared, errClientGone
	}
}
