package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/deck"
	"repro/internal/fem"
	"repro/internal/mg"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/stack"
	"repro/internal/units"
)

// The corpus shared with the deck package and the CLI golden tests; the
// service must reproduce these reports byte for byte.
const (
	corpusDir = "../../testdata/decks"
	goldenDir = "../../testdata/decks/golden"
)

// newTestServer builds a Server on its own registry (so counters are not
// polluted across tests) behind an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, cfg.Registry
}

// post sends one request and returns status and body.
func post(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, got
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeckEndpointMatchesGoldens posts every corpus deck to /deck and
// requires the response body to be byte-identical to the deck's golden
// report — the service must not add, reorder or reformat anything relative
// to the CLI -deck path.
func TestDeckEndpointMatchesGoldens(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1})
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.ttsv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("corpus has %d decks, want >= 6", len(paths))
	}
	sort.Strings(paths)
	for _, path := range paths {
		path := path
		base := strings.TrimSuffix(filepath.Base(path), ".ttsv")
		t.Run(base, func(t *testing.T) {
			t.Parallel()
			deck, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join(goldenDir, base+".golden"))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			status, got := post(t, ts.URL+"/deck", deck)
			if status != http.StatusOK {
				t.Fatalf("status %d, body:\n%s", status, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("response differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// baselineDeck returns a deck equivalent to the given JSON endpoint request
// against the paper's default block: same geometry as stack.DefaultBlock,
// same analysis defaults as the JSON lowering.
func baselineDeck(title, analysis string) []byte {
	return []byte(title + "\n" +
		"b1 side=100um sink=27\n" +
		"p1 tsi=500um td=4um tdev=1um\n" +
		"p2 tsi=45um td=4um tb=1um tdev=1um repeat=2\n" +
		"v1 r=10um tl=0.5um lext=1um n=1\n" +
		"iall plane=all devd=700w/mm3 ildd=70w/mm3\n" +
		analysis + "\n" +
		".end\n")
}

// TestSolveMatchesDeck: an empty JSON /solve request and the hand-written
// equivalent deck must produce byte-identical reports — the JSON lowering
// and the deck lowering meet at the same scenario.
func TestSolveMatchesDeck(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1})
	status, fromJSON := post(t, ts.URL+"/solve", []byte(`{}`))
	if status != http.StatusOK {
		t.Fatalf("/solve status %d, body:\n%s", status, fromJSON)
	}
	status, fromDeck := post(t, ts.URL+"/deck", baselineDeck("solve", ".op model=all segments=100"))
	if status != http.StatusOK {
		t.Fatalf("/deck status %d, body:\n%s", status, fromDeck)
	}
	if !bytes.Equal(fromJSON, fromDeck) {
		t.Errorf("JSON solve differs from equivalent deck:\n--- json ---\n%s\n--- deck ---\n%s", fromJSON, fromDeck)
	}
}

// TestSweepMatchesDeck: a JSON /sweep over a linear range must match the
// equivalent .sweep card byte for byte. The endpoints are spelled with
// units.UM, not 5e-6 literals: the deck parses "5um" as 5 × 1e-6, which is
// one ulp away from the decimal literal, and byte-identity is exact.
func TestSweepMatchesDeck(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1})
	body, err := json.Marshal(SweepRequest{
		Block:  stack.DefaultBlock(),
		Param:  "r",
		From:   units.UM(5),
		To:     units.UM(10),
		Points: 3,
		Models: deck.ModelSpec{Model: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	status, fromJSON := post(t, ts.URL+"/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("/sweep status %d, body:\n%s", status, fromJSON)
	}
	status, fromDeck := post(t, ts.URL+"/deck", baselineDeck("sweep", ".sweep r 5um 10um 3 model=a"))
	if status != http.StatusOK {
		t.Fatalf("/deck status %d, body:\n%s", status, fromDeck)
	}
	if !bytes.Equal(fromJSON, fromDeck) {
		t.Errorf("JSON sweep differs from equivalent deck:\n--- json ---\n%s\n--- deck ---\n%s", fromJSON, fromDeck)
	}
}

// TestPlanMatchesDeck: a JSON /plan must match the deck whose plane/via
// cards spell out the same technology. Lengths go through units.UM/MM for
// the same ulp-exactness reason as the sweep test.
func TestPlanMatchesDeck(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1})
	tech := plan.DefaultTechnology()
	tech.ViaRadius = units.UM(30)
	tech.LinerThickness = units.UM(1)
	tech.Extension = units.UM(1)
	tech.TSi1 = units.UM(300)
	tech.TSi = units.UM(300)
	tech.TD = units.UM(20)
	tech.TB = units.UM(10)
	tech.DeviceLayerThickness = units.UM(1)
	req := PlanRequest{
		Tech: tech,
		Floor: plan.Floorplan{
			TileSide: units.MM(1),
			PlanePowers: [][][]float64{
				{{0.10, 0.25, 0.20}, {0.15, 0.60, 0.50}, {0.10, 0.20, 0.15}},
				{{0.12, 0.30, 0.25}, {0.18, 0.70, 0.55}, {0.08, 0.15, 0.10}},
			},
		},
		Budget: 15,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	status, fromJSON := post(t, ts.URL+"/plan", body)
	if status != http.StatusOK {
		t.Fatalf("/plan status %d, body:\n%s", status, fromJSON)
	}
	planDeck := []byte("plan\n" +
		"p1 tsi=300um td=20um tdev=1um\n" +
		"p2 tsi=300um td=20um tb=10um repeat=2\n" +
		"v1 r=30um tl=1um lext=1um\n" +
		"t00 0 0 0.10w 0.25w 0.20w\n" +
		"t01 0 1 0.15w 0.60w 0.50w\n" +
		"t02 0 2 0.10w 0.20w 0.15w\n" +
		"t10 1 0 0.12w 0.30w 0.25w\n" +
		"t11 1 1 0.18w 0.70w 0.55w\n" +
		"t12 1 2 0.08w 0.15w 0.10w\n" +
		".plan budget=15 tileside=1mm maxdensity=0.1 model=a\n" +
		".end\n")
	status, fromDeck := post(t, ts.URL+"/deck", planDeck)
	if status != http.StatusOK {
		t.Fatalf("/deck status %d, body:\n%s", status, fromDeck)
	}
	if !bytes.Equal(fromJSON, fromDeck) {
		t.Errorf("JSON plan differs from equivalent deck:\n--- json ---\n%s\n--- deck ---\n%s", fromJSON, fromDeck)
	}
}

// Service-level multigrid defaults (Config.MGHierarchy/MGPrecision) fill
// JSON requests that leave the fields empty; a request that chooses
// explicitly wins; and the merged spec is validated like any other, so an
// inconsistent combination surfaces as a lowering error (a 400 at the
// handler). Deck requests never pass through applyMGDefaults — the corpus
// golden tests above pin that path byte for byte.
func TestConfigMGDefaultsApplyToJSONRequests(t *testing.T) {
	s, _, _ := newTestServer(t, Config{Workers: 1, MGHierarchy: "geometric", MGPrecision: "f32"})

	refRes := func(t *testing.T, body string) fem.Resolution {
		t.Helper()
		sc, err := s.lowerSolve([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		m, ok := sc.Analyses[0].Op.Models[0].(fem.ReferenceModel)
		if !ok {
			t.Fatalf("lowered model is %T, want fem.ReferenceModel", sc.Analyses[0].Op.Models[0])
		}
		return m.Res
	}

	res := refRes(t, `{"models": {"model": "ref"}}`)
	if res.Hierarchy != mg.HierarchyGeometric || res.Precision != mg.PrecisionF32 {
		t.Fatalf("config defaults not applied: hierarchy=%v precision=%v", res.Hierarchy, res.Precision)
	}

	res = refRes(t, `{"models": {"model": "ref", "mg_hierarchy": "galerkin", "mg_precision": "f64"}}`)
	if res.Hierarchy != mg.HierarchyGalerkin || res.Precision != mg.PrecisionF64 {
		t.Fatalf("request override lost to config: hierarchy=%v precision=%v", res.Hierarchy, res.Precision)
	}

	if _, err := s.lowerSolve([]byte(`{"models": {"model": "ref", "mg_hierarchy": "galerkin"}}`)); err == nil {
		t.Fatal("galerkin request merged with the configured f32 default lowered without error")
	}
}

// TestCoalescingCollapsesIdenticalRequests fires N identical /solve requests
// while the execution is gated, then releases the gate: exactly one
// execution must run and the other N-1 requests must share its bytes.
func TestCoalescingCollapsesIdenticalRequests(t *testing.T) {
	const n = 8
	s, ts, reg := newTestServer(t, Config{Workers: 1})
	var execs atomic.Int32
	release := make(chan struct{})
	s.solveGate = func(string) {
		execs.Add(1)
		<-release
	}
	body := []byte(`{"models": {"model": "a"}}`)

	// The flight key the handler will compute for this body.
	sc, err := s.lowerSolve(body)
	if err != nil {
		t.Fatal(err)
	}
	key := canon.Hash("solve", sc)

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	// Release the gate only once every request is parked on the same flight,
	// so none of them can arrive after the leader finished and start a
	// second execution.
	waitFor(t, "all requests to join the flight", func() bool {
		s.flights.mu.Lock()
		defer s.flights.mu.Unlock()
		c := s.flights.m[key]
		return c != nil && c.waiters == n
	})
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Errorf("coalesced batch ran %d executions, want 1", got)
	}
	if got := reg.Counter("serve.coalesced").Value(); got != n-1 {
		t.Errorf("serve.coalesced = %d, want %d", got, n-1)
	}
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d got different bytes than request 0", i)
		}
	}
	if len(bodies[0]) == 0 || !bytes.HasPrefix(bodies[0], []byte("title: solve\n")) {
		t.Errorf("unexpected report:\n%s", bodies[0])
	}
}

// TestWarmPoolBitIdentical solves the reference model twice on one server:
// the second solve reuses pooled solver state and must still produce the
// exact same bytes as the cold one.
func TestWarmPoolBitIdentical(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{Workers: 1})
	body := []byte(`{"models": {"model": "ref"}}`)
	status, cold := post(t, ts.URL+"/solve", body)
	if status != http.StatusOK {
		t.Fatalf("cold solve: status %d, body:\n%s", status, cold)
	}
	status, warm := post(t, ts.URL+"/solve", body)
	if status != http.StatusOK {
		t.Fatalf("warm solve: status %d, body:\n%s", status, warm)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm solve differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if hits := reg.Counter("serve.pool.hits").Value(); hits < 1 {
		t.Errorf("serve.pool.hits = %d, want >= 1", hits)
	}
}

// TestAdmissionControl: with a 1-token bucket and a negligible refill rate,
// the second request must get 429 with a Retry-After hint.
func TestAdmissionControl(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{Workers: 1, Rate: 1e-4, Burst: 1})
	status, body := post(t, ts.URL+"/solve", []byte(`{"models": {"model": "a"}}`))
	if status != http.StatusOK {
		t.Fatalf("first request: status %d, body:\n%s", status, body)
	}
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(`{"models": {"model": "a"}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if got := reg.Counter("serve.rejected").Value(); got != 1 {
		t.Errorf("serve.rejected = %d, want 1", got)
	}
}

// TestTimeoutReturns504: a vanishing per-request timeout must surface as 504
// (the deadline reaches the sweep engine through the flight's context).
func TestTimeoutReturns504(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1, Timeout: time.Nanosecond})
	body := []byte(`{"param": "r", "from": 5e-6, "to": 10e-6, "points": 6, "models": {"model": "a"}}`)
	status, got := post(t, ts.URL+"/sweep", body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body:\n%s", status, got)
	}
	if !strings.Contains(string(got), "timed out") {
		t.Errorf("body %q does not mention the timeout", got)
	}
}

// TestBadRequests covers the 4xx surface of every endpoint.
func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, path, body string
		status           int
		want             string
	}{
		{"malformed json", "/solve", `{`, http.StatusBadRequest, "decoding request"},
		{"unknown field", "/solve", `{"bogus": 1}`, http.StatusBadRequest, "unknown field"},
		{"trailing garbage", "/solve", `{} {}`, http.StatusBadRequest, "trailing data"},
		{"bad model", "/solve", `{"models": {"model": "x"}}`, http.StatusBadRequest, "unknown model"},
		{"sweep without points", "/sweep", `{"param": "r"}`, http.StatusBadRequest, "points"},
		{"sweep bad param", "/sweep", `{"param": "zz", "values": [1e-6]}`, http.StatusBadRequest, "zz"},
		{"plan without tiles", "/plan", `{"budget": 15}`, http.StatusBadRequest, "tile"},
		{"unparsable deck", "/deck", "broken\nq1 r=10um\n.op\n", http.StatusBadRequest, "request.ttsv"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, got := post(t, ts.URL+tc.path, []byte(tc.body))
			if status != tc.status {
				t.Fatalf("status %d, want %d; body:\n%s", status, tc.status, got)
			}
			if !strings.Contains(strings.ToLower(string(got)), strings.ToLower(tc.want)) {
				t.Errorf("body %q does not contain %q", got, tc.want)
			}
		})
	}
	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/solve")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /solve: status %d, want 405", resp.StatusCode)
		}
	})
	t.Run("oversized body", func(t *testing.T) {
		status, got := post(t, ts.URL+"/deck", bytes.Repeat([]byte("*"), maxBodyBytes+1))
		if status != http.StatusRequestEntityTooLarge {
			t.Errorf("status %d, want 413; body:\n%s", status, got)
		}
		if !strings.Contains(string(got), "exceeds") {
			t.Errorf("body %q does not explain the size limit", got)
		}
	})
	t.Run("oversized sweep body", func(t *testing.T) {
		status, got := post(t, ts.URL+"/sweep", bytes.Repeat([]byte("*"), maxBodyBytes+1))
		if status != http.StatusRequestEntityTooLarge {
			t.Errorf("status %d, want 413; body:\n%s", status, got)
		}
	})
}

// TestHealthMetricsAndPprof checks the operational endpoints live on the
// same mux as the solve endpoints.
func TestHealthMetricsAndPprof(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1})
	status, _ := post(t, ts.URL+"/solve", []byte(`{"models": {"model": "a"}}`))
	if status != http.StatusOK {
		t.Fatalf("solve: status %d", status)
	}
	for path, want := range map[string]string{
		"/healthz":          "ok",
		"/metrics":          "serve.solve.requests",
		"/debug/pprof/":     "profile",
		"/debug/pprof/heap": "",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
			continue
		}
		if want != "" && !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body does not contain %q", path, want)
		}
	}
}

// TestFlightLastWaiterCancels: when the only client waiting on a flight
// disconnects, the execution context must be cancelled so the solve stops.
func TestFlightLastWaiterCancels(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	cancelled := make(chan struct{})
	rctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, _, err := g.do(rctx, "k", func(ctx context.Context) response {
			close(started)
			<-ctx.Done()
			close(cancelled)
			return response{status: http.StatusServiceUnavailable}
		})
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; err != errClientGone {
		t.Fatalf("do returned %v, want errClientGone", err)
	}
	select {
	case <-cancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("execution context was not cancelled after the last waiter left")
	}
}

// TestTokenBucketRefill pins the bucket arithmetic with an injected clock.
func TestTokenBucketRefill(t *testing.T) {
	if b := newTokenBucket(0, 0); b != nil {
		t.Fatal("rate 0 should disable admission control")
	}
	var nilBucket *tokenBucket
	if ok, _ := nilBucket.take(); !ok {
		t.Fatal("nil bucket must admit")
	}
	b := newTokenBucket(2, 1)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	if ok, _ := b.take(); !ok {
		t.Fatal("first take should be admitted from the burst")
	}
	ok, retry := b.take()
	if ok {
		t.Fatal("empty bucket admitted a request")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want within (0, 1s] at 2 tokens/s", retry)
	}
	now = now.Add(time.Second)
	if ok, _ := b.take(); !ok {
		t.Fatal("bucket did not refill after a second")
	}
}

// TestListenAndServeDrains starts a real listener, verifies it serves, then
// cancels the context and requires a clean drain.
func TestListenAndServeDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- ListenAndServe(ctx, "127.0.0.1:0", Config{Registry: obs.NewRegistry()}, time.Second, func(addr string) {
			ready <- addr
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited before ready: %v", err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancellation")
	}
}
