package serve

import (
	"reflect"
	"sync"

	"repro/internal/core"
)

// pool is the warm pool of reusable solver state, keyed by grid topology.
// Each entry holds per-model core.ReusableInstances (for the reference model
// these carry a fem.SolveContext: assembly patterns, multigrid hierarchies,
// solver scratch), so a request solving the same topology as an earlier one
// skips the per-solve setup. The ReusableSolver contract guarantees reuse
// never changes results — a pooled solve is bit-identical to a cold one.
//
// Entries are checked out exclusively (instances are not safe for concurrent
// use) and returned after the request; at most maxIdle entries are kept per
// topology, the rest are closed on check-in.
type pool struct {
	mu      sync.Mutex
	maxIdle int
	idle    map[string][]*reuseEntry
	closed  bool
}

func newPool(maxIdle int) *pool {
	if maxIdle <= 0 {
		maxIdle = 2
	}
	return &pool{maxIdle: maxIdle, idle: make(map[string][]*reuseEntry)}
}

// reuseEntry is one checkout's set of reusable instances; it implements
// deck.ReuseProvider for the run it is lent to.
type reuseEntry struct {
	inst map[core.Model]core.ReusableInstance
}

// InstanceFor returns the entry's instance for the model, creating one on
// first sight. Models without reusable state (or with non-comparable dynamic
// types, which cannot key the map) get nil: the run solves them statelessly.
func (e *reuseEntry) InstanceFor(m core.Model) core.ReusableInstance {
	rs, ok := m.(core.ReusableSolver)
	if !ok || !reflect.TypeOf(m).Comparable() {
		return nil
	}
	ri, ok := e.inst[m]
	if !ok {
		ri = rs.NewReusable(false)
		if e.inst == nil {
			e.inst = make(map[core.Model]core.ReusableInstance)
		}
		e.inst[m] = ri
	}
	return ri
}

func (e *reuseEntry) close() {
	for _, ri := range e.inst {
		ri.Close()
	}
	e.inst = nil
}

// checkout lends an idle entry for the topology, or a fresh one. The second
// return reports a warm hit.
func (p *pool) checkout(key string) (*reuseEntry, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if l := p.idle[key]; len(l) > 0 {
		e := l[len(l)-1]
		l[len(l)-1] = nil
		p.idle[key] = l[:len(l)-1]
		return e, true
	}
	return &reuseEntry{}, false
}

// checkin returns a lent entry; beyond maxIdle per topology (or after close)
// the entry's instances are released instead.
func (p *pool) checkin(key string, e *reuseEntry) {
	p.mu.Lock()
	if !p.closed && len(p.idle[key]) < p.maxIdle {
		p.idle[key] = append(p.idle[key], e)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	e.close()
}

// close releases every idle entry; later check-ins are released on arrival.
func (p *pool) close() {
	p.mu.Lock()
	entries := p.idle
	p.idle = make(map[string][]*reuseEntry)
	p.closed = true
	p.mu.Unlock()
	for _, l := range entries {
		for _, e := range l {
			e.close()
		}
	}
}
