// Package serve is the ttsvd solve service: an embeddable HTTP handler
// exposing the library's analyses — steady-state solves, parameter sweeps,
// insertion planning and full .ttsv scenario decks — over POST endpoints.
//
// Every request lowers onto the same deck.Scenario execution path the CLIs'
// -deck flag uses and renders through deck.Result.WriteText, so a response
// body is byte-identical to the equivalent CLI run for the same input.
// Around that deterministic core the service adds the serving machinery:
//
//   - single-flight coalescing: identical in-flight requests (keyed by the
//     canonical hash of the lowered scenario) share one solve;
//   - a warm pool of reusable solver state keyed by grid topology;
//   - token-bucket admission control (429 + Retry-After);
//   - per-request timeouts and client-disconnect cancellation threaded into
//     the iterative solvers;
//   - /metrics, /healthz and /debug/pprof/ on the same mux.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/deck"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/stack"
	"repro/internal/units"
)

// maxBodyBytes bounds request bodies; decks and JSON configs are small, so
// anything past this is a mistake or abuse.
const maxBodyBytes = 1 << 20

// Config configures the service. The zero value serves with GOMAXPROCS
// engine workers, no admission limit, no timeout and the default registry.
type Config struct {
	// Workers is the engine pool size for sweep and plan analyses; values
	// < 1 select GOMAXPROCS. Per-request workers= overrides still apply.
	Workers int
	// Timeout bounds each solve; an expired request gets 504. Zero means no
	// limit (client disconnect still cancels).
	Timeout time.Duration
	// Rate admits this many solve requests per second (token bucket);
	// overflow gets 429 with Retry-After. Zero disables admission control.
	Rate float64
	// Burst is the bucket capacity; <= 0 selects ceil(Rate).
	Burst int
	// PoolIdle caps the warm solver-state entries kept per grid topology;
	// <= 0 selects 2.
	PoolIdle int
	// Registry receives the service metrics; nil selects obs.Default().
	Registry *obs.Registry
	// Trace optionally records per-request and solver spans as NDJSON.
	Trace *obs.Tracer
}

// Server is the solve service handler. Create it with New; it is safe for
// concurrent use. Close releases the warm pool.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	pool    *pool
	flights flightGroup
	bucket  *tokenBucket
	reg     *obs.Registry

	// solveGate, when set (tests only), runs at the start of every
	// coalesced execution, before any solving.
	solveGate func(endpoint string)
}

// New returns a ready-to-serve handler for cfg.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		pool:   newPool(cfg.PoolIdle),
		bucket: newTokenBucket(cfg.Rate, cfg.Burst),
		reg:    reg,
	}
	s.mux.HandleFunc("POST /solve", s.handleRun("solve", lowerSolve))
	s.mux.HandleFunc("POST /sweep", s.handleRun("sweep", lowerSweep))
	s.mux.HandleFunc("POST /plan", s.handleRun("plan", lowerPlan))
	s.mux.HandleFunc("POST /deck", s.handleRun("deck", lowerDeck))
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, s.reg.Snapshot().String())
	})
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	obs.RegisterPprof(s.mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close releases the warm pool. In-flight requests finish their solves; new
// requests still work but solve cold.
func (s *Server) Close() error {
	s.pool.close()
	return nil
}

// handleRun wraps one solve endpoint: admission control, request lowering,
// single-flight coalescing, execution, response sharing.
func (s *Server) handleRun(endpoint string, lower func(body []byte) (*deck.Scenario, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("serve." + endpoint + ".requests").Inc()
		if ok, retry := s.bucket.take(); !ok {
			s.reg.Counter("serve.rejected").Inc()
			secs := int(math.Ceil(retry.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, "solve capacity exhausted, retry later", http.StatusTooManyRequests)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			http.Error(w, fmt.Sprintf("reading request: %v", err), http.StatusBadRequest)
			return
		}
		sc, err := lower(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The coalescing key is the canonical encoding of the *lowered*
		// scenario, not the raw bytes: two requests that differ only in
		// whitespace or field order still share one solve.
		key := canon.Hash(endpoint, sc)
		t0 := time.Now()
		resp, shared, err := s.flights.do(r.Context(), key, func(ctx context.Context) response {
			return s.execute(ctx, endpoint, sc)
		})
		s.reg.Histogram("serve.request.seconds", obs.ExpBuckets(1e-6, 4, 13)).Observe(time.Since(t0).Seconds())
		if err != nil {
			// Client is gone; there is nobody to write to.
			s.reg.Counter("serve.abandoned").Inc()
			return
		}
		if shared {
			s.reg.Counter("serve.coalesced").Inc()
		}
		w.Header().Set("Content-Type", resp.contentType)
		w.WriteHeader(resp.status)
		w.Write(resp.body)
	}
}

// execute runs one coalesced scenario to a response. ctx is the flight's
// execution context (alive while any client waits); the configured timeout
// and tracer stack on top, and both reach the iterative solvers through
// deck.RunScenario.
func (s *Server) execute(ctx context.Context, endpoint string, sc *deck.Scenario) response {
	if s.solveGate != nil {
		s.solveGate(endpoint)
	}
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	ctx = obs.ContextWithTracer(ctx, s.cfg.Trace)
	ctx, sp := obs.StartSpan(ctx, "serve."+endpoint)
	if sp != nil {
		sp.Set("analyses", len(sc.Analyses))
		defer sp.End()
	}

	opt := deck.Options{Workers: s.cfg.Workers, Trace: s.cfg.Trace}
	if sc.Stack != nil {
		key := canon.Hash("topology", len(sc.Stack.Planes))
		entry, warm := s.pool.checkout(key)
		defer s.pool.checkin(key, entry)
		if warm {
			s.reg.Counter("serve.pool.hits").Inc()
		} else {
			s.reg.Counter("serve.pool.misses").Inc()
		}
		opt.Reuse = entry
	}

	res, err := deck.RunScenario(ctx, sc, opt)
	if err != nil {
		if sp != nil {
			sp.Set("error", err.Error())
		}
		s.reg.Counter("serve.errors").Inc()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return textResponse(http.StatusGatewayTimeout, fmt.Sprintf("solve timed out after %v\n", s.cfg.Timeout))
		case errors.Is(err, context.Canceled):
			return textResponse(http.StatusServiceUnavailable, "solve cancelled\n")
		default:
			return textResponse(http.StatusUnprocessableEntity, err.Error()+"\n")
		}
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		s.reg.Counter("serve.errors").Inc()
		return textResponse(http.StatusInternalServerError, err.Error()+"\n")
	}
	return response{status: http.StatusOK, contentType: "text/plain; charset=utf-8", body: buf.Bytes()}
}

func textResponse(status int, msg string) response {
	return response{status: status, contentType: "text/plain; charset=utf-8", body: []byte(msg)}
}

// opCoeffs and planCoeffs are the analysis-default Model A coefficients,
// matching the deck lowering's defaults so JSON and deck requests build
// value-identical models.
var (
	opCoeffs   = core.Coeffs{K1: 1.3, K2: 0.55, C1: 1}
	planCoeffs = core.Coeffs{K1: 1.6, K2: 0.8, C1: 3.5}
)

// SolveRequest is the POST /solve body: one steady-state solve of a block.
// Block starts from the paper's DefaultBlock, so the empty object solves the
// baseline geometry; materials may be stock names ("Cu") or full objects.
// All quantities are SI.
type SolveRequest struct {
	Block  stack.BlockConfig `json:"block"`
	Models deck.ModelSpec    `json:"models"`
}

// SweepRequest is the POST /sweep body: a one-parameter geometry sweep.
// Give either Values, or From/To/Points for a linear range. Param names
// match the deck's sweepable parameters (r, tl, lext, n, tsi, tsi1, td, tb);
// values are SI.
type SweepRequest struct {
	Block  stack.BlockConfig `json:"block"`
	Models deck.ModelSpec    `json:"models"`
	Param  string            `json:"param"`
	Values []float64         `json:"values,omitempty"`
	From   float64           `json:"from,omitempty"`
	To     float64           `json:"to,omitempty"`
	Points int               `json:"points,omitempty"`
	// Workers overrides the service's engine pool size for this request.
	Workers int `json:"workers,omitempty"`
}

// PlanRequest is the POST /plan body: a TTSV insertion-planning run. Tech
// starts from plan.DefaultTechnology; PlanePowers is [row][col][plane] watts.
type PlanRequest struct {
	Tech    plan.Technology `json:"tech"`
	Floor   plan.Floorplan  `json:"floor"`
	Budget  float64         `json:"budget"`
	Models  deck.ModelSpec  `json:"models"`
	Workers int             `json:"workers,omitempty"`
}

// decodeStrict unmarshals body into v, rejecting unknown fields and
// trailing garbage.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("decoding request: trailing data after JSON object")
	}
	return nil
}

func lowerSolve(body []byte) (*deck.Scenario, error) {
	req := SolveRequest{Block: stack.DefaultBlock()}
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	models, err := req.Models.Models("all", opCoeffs)
	if err != nil {
		return nil, err
	}
	st, err := req.Block.Build()
	if err != nil {
		return nil, err
	}
	return &deck.Scenario{
		Title:    "solve",
		Stack:    st,
		Analyses: []deck.Analysis{{Kind: "op", Op: &deck.OpAnalysis{Models: models}}},
	}, nil
}

func lowerSweep(body []byte) (*deck.Scenario, error) {
	req := SweepRequest{Block: stack.DefaultBlock()}
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	models, err := req.Models.Models("all", opCoeffs)
	if err != nil {
		return nil, err
	}
	base, err := req.Block.Build()
	if err != nil {
		return nil, err
	}
	values := req.Values
	if len(values) == 0 {
		if req.Points < 2 {
			return nil, fmt.Errorf("sweep needs values, or from/to with points >= 2 (got points=%d)", req.Points)
		}
		values = units.Linspace(req.From, req.To, req.Points)
	}
	stacks := make([]*stack.Stack, len(values))
	for i, v := range values {
		s, err := deck.ApplyParam(base, req.Param, v)
		if err != nil {
			return nil, fmt.Errorf("sweep point %s=%v: %v", req.Param, v, err)
		}
		stacks[i] = s
	}
	return &deck.Scenario{
		Title: "sweep",
		Stack: base,
		Analyses: []deck.Analysis{{Kind: "sweep", Sweep: &deck.SweepAnalysis{
			Param: req.Param, Values: values, Stacks: stacks, Models: models, Workers: req.Workers,
		}}},
	}, nil
}

func lowerPlan(body []byte) (*deck.Scenario, error) {
	req := PlanRequest{Tech: plan.DefaultTechnology()}
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	models, err := req.Models.Models("a", planCoeffs)
	if err != nil {
		return nil, err
	}
	if len(models) != 1 {
		return nil, fmt.Errorf("plan takes exactly one model, got %d", len(models))
	}
	if err := req.Floor.Validate(req.Tech); err != nil {
		return nil, err
	}
	return &deck.Scenario{
		Title: "plan",
		Analyses: []deck.Analysis{{Kind: "plan", Plan: &deck.PlanAnalysis{
			Tech: req.Tech, Floor: &req.Floor, Budget: req.Budget, Model: models[0], Workers: req.Workers,
		}}},
	}, nil
}

func lowerDeck(body []byte) (*deck.Scenario, error) {
	d, err := deck.Parse("request.ttsv", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	return d.Lower()
}

// ListenAndServe runs the service on addr until ctx is cancelled, then
// drains: the listener closes immediately, in-flight requests get up to
// drain (<= 0 selects 10s) to finish, stragglers are cut off. ready, when
// non-nil, is called with the bound address once the listener is up (addr
// may end in :0).
func ListenAndServe(ctx context.Context, addr string, cfg Config, drain time.Duration, ready func(boundAddr string)) error {
	s := New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	if drain <= 0 {
		drain = 10 * time.Second
	}
	srv := &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}
