// Package serve is the ttsvd solve service: an embeddable HTTP handler
// exposing the library's analyses — steady-state solves, parameter sweeps,
// insertion planning and full .ttsv scenario decks — over POST endpoints.
//
// Every request lowers onto the same deck.Scenario execution path the CLIs'
// -deck flag uses and renders through deck.Result.WriteText, so a response
// body is byte-identical to the equivalent CLI run for the same input.
// Around that deterministic core the service adds the serving machinery:
//
//   - single-flight coalescing: identical in-flight requests (keyed by the
//     canonical hash of the lowered scenario) share one solve;
//   - a warm pool of reusable solver state keyed by grid topology;
//   - token-bucket admission control (429 + Retry-After);
//   - per-request timeouts and client-disconnect cancellation threaded into
//     the iterative solvers;
//   - /metrics, /healthz and /debug/pprof/ on the same mux.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/deck"
	"repro/internal/fem"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/stack"
	"repro/internal/sweep"
	"repro/internal/units"
)

// maxBodyBytes bounds request bodies; decks and JSON configs are small, so
// anything past this is a mistake or abuse.
const maxBodyBytes = 1 << 20

// Config configures the service. The zero value serves with GOMAXPROCS
// engine workers, no admission limit, no timeout and the default registry.
type Config struct {
	// Workers is the engine pool size for sweep and plan analyses; values
	// < 1 select GOMAXPROCS. Per-request workers= overrides still apply.
	Workers int
	// Timeout bounds each solve; an expired request gets 504. Zero means no
	// limit (client disconnect still cancels).
	Timeout time.Duration
	// Rate admits this many solve requests per second (token bucket);
	// overflow gets 429 with Retry-After. Zero disables admission control.
	Rate float64
	// Burst is the bucket capacity; <= 0 selects ceil(Rate).
	Burst int
	// PoolIdle caps the warm solver-state entries kept per grid topology;
	// <= 0 selects 2.
	PoolIdle int
	// MGHierarchy, when non-empty ("galerkin" or "geometric"), is applied to
	// JSON solve/sweep/plan requests whose models.mg_hierarchy field is
	// empty, selecting how reference-solver multigrid coarse levels are
	// built. Deck requests are unaffected — a deck spells mg.hierarchy=
	// itself. Requests that do set the field always win. Invalid spellings
	// surface as 400s on the affected requests.
	MGHierarchy string
	// MGPrecision is the matching default for models.mg_precision ("f64" or
	// "f32"; "f32" requires the geometric hierarchy).
	MGPrecision string
	// Registry receives the service metrics; nil selects obs.Default().
	Registry *obs.Registry
	// Trace optionally records per-request and solver spans as NDJSON.
	Trace *obs.Tracer
}

// Server is the solve service handler. Create it with New; it is safe for
// concurrent use. Close releases the warm pool.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	pool    *pool
	flights flightGroup
	bucket  *tokenBucket
	reg     *obs.Registry

	// solveGate, when set (tests only), runs at the start of every
	// coalesced execution, before any solving.
	solveGate func(endpoint string)
}

// New returns a ready-to-serve handler for cfg.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		pool:   newPool(cfg.PoolIdle),
		bucket: newTokenBucket(cfg.Rate, cfg.Burst),
		reg:    reg,
	}
	s.mux.HandleFunc("POST /solve", s.handleRun("solve", s.lowerSolve))
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("POST /plan", s.handleRun("plan", s.lowerPlan))
	s.mux.HandleFunc("POST /deck", s.handleRun("deck", lowerDeck))
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, s.reg.Snapshot().String())
	})
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	obs.RegisterPprof(s.mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close releases the warm pool. In-flight requests finish their solves; new
// requests still work but solve cold.
func (s *Server) Close() error {
	s.pool.close()
	return nil
}

// handleRun wraps one solve endpoint: admission control, request lowering,
// single-flight coalescing, execution, response sharing.
func (s *Server) handleRun(endpoint string, lower func(body []byte) (*deck.Scenario, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("serve." + endpoint + ".requests").Inc()
		if ok, retry := s.bucket.take(); !ok {
			s.rateLimited(w, retry)
			return
		}
		body, ok := s.readBody(w, r)
		if !ok {
			return
		}
		sc, err := lower(body)
		if err != nil {
			s.reject(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The coalescing key is the canonical encoding of the *lowered*
		// scenario, not the raw bytes: two requests that differ only in
		// whitespace or field order still share one solve.
		key := canon.Hash(endpoint, sc)
		s.coalesced(w, r, endpoint, key, func(ctx context.Context) response {
			return s.execute(ctx, endpoint, sc, deck.SweepControl{})
		})
	}
}

// readBody reads the request body under the size cap. On failure it answers
// the client (413 for an oversized body, 400 otherwise), refunds the
// admission token — the request never reached a solver — and returns false.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.reject(w, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit), http.StatusRequestEntityTooLarge)
		} else {
			s.reject(w, fmt.Sprintf("reading request: %v", err), http.StatusBadRequest)
		}
		return nil, false
	}
	return body, true
}

// reject answers a request rejected before any solving and gives its
// admission token back.
func (s *Server) reject(w http.ResponseWriter, msg string, status int) {
	s.bucket.refund()
	s.reg.Counter("serve.refunded").Inc()
	http.Error(w, msg, status)
}

// coalesced runs fn under the single-flight group and writes the shared
// response.
func (s *Server) coalesced(w http.ResponseWriter, r *http.Request, endpoint, key string, fn func(context.Context) response) {
	t0 := time.Now()
	resp, shared, err := s.flights.do(r.Context(), key, fn)
	s.reg.Histogram("serve.request.seconds", obs.ExpBuckets(1e-6, 4, 13)).Observe(time.Since(t0).Seconds())
	if err != nil {
		// Client is gone; there is nobody to write to.
		s.reg.Counter("serve.abandoned").Inc()
		return
	}
	if shared {
		s.reg.Counter("serve.coalesced").Inc()
	}
	w.Header().Set("Content-Type", resp.contentType)
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// execute runs one coalesced scenario to a response. ctx is the flight's
// execution context (alive while any client waits); the configured timeout
// and tracer stack on top, and both reach the iterative solvers through
// deck.RunScenario.
func (s *Server) execute(ctx context.Context, endpoint string, sc *deck.Scenario, sweepCtl deck.SweepControl) response {
	if s.solveGate != nil {
		s.solveGate(endpoint)
	}
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	ctx = obs.ContextWithTracer(ctx, s.cfg.Trace)
	ctx, sp := obs.StartSpan(ctx, "serve."+endpoint)
	if sp != nil {
		sp.Set("analyses", len(sc.Analyses))
		defer sp.End()
	}

	opt := deck.Options{Workers: s.cfg.Workers, Trace: s.cfg.Trace, Sweep: sweepCtl}
	if sc.Stack != nil {
		key := poolKey(sc.Stack)
		entry, warm := s.pool.checkout(key)
		defer s.pool.checkin(key, entry)
		if warm {
			s.reg.Counter("serve.pool.hits").Inc()
		} else {
			s.reg.Counter("serve.pool.misses").Inc()
		}
		opt.Reuse = entry
	}

	res, err := deck.RunScenario(ctx, sc, opt)
	if err != nil {
		if sp != nil {
			sp.Set("error", err.Error())
		}
		s.reg.Counter("serve.errors").Inc()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return textResponse(http.StatusGatewayTimeout, fmt.Sprintf("solve timed out after %v\n", s.cfg.Timeout))
		case errors.Is(err, context.Canceled):
			return textResponse(http.StatusServiceUnavailable, "solve cancelled\n")
		default:
			return textResponse(http.StatusUnprocessableEntity, err.Error()+"\n")
		}
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		s.reg.Counter("serve.errors").Inc()
		return textResponse(http.StatusInternalServerError, err.Error()+"\n")
	}
	return response{status: http.StatusOK, contentType: "text/plain; charset=utf-8", body: buf.Bytes()}
}

// poolKey derives the warm-pool key from the stack's grid topology — the
// same structural inputs that decide whether assembled solver state is
// actually reusable. Keying on plane count alone made distinct topologies
// with equal plane counts (e.g. differing bond-layer thickness classes)
// share and thrash one pool entry. Stacks whose topology cannot be derived
// (the reference solver would reject them anyway) fall back to the plane
// count so they still pool somewhere.
func poolKey(st *stack.Stack) string {
	if sig, err := fem.GridTopology(st); err == nil {
		return canon.Hash("topology", sig)
	}
	return canon.Hash("topology", len(st.Planes))
}

// handleSweep serves POST /sweep: admission, lowering, then either the
// coalesced one-shot response path (like every other endpoint, with the
// shard spec folded into the coalescing key) or — when the request sets
// "stream" — a per-point NDJSON progress stream that bypasses coalescing,
// since each client gets its own live stream.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("serve.sweep.requests").Inc()
	if ok, retry := s.bucket.take(); !ok {
		s.rateLimited(w, retry)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, sc, spec, err := s.lowerSweepRequest(body)
	if err != nil {
		s.reject(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctl := deck.SweepControl{Shard: spec}
	if !req.Stream {
		key := canon.Hash("sweep", spec.String(), sc)
		s.coalesced(w, r, "sweep", key, func(ctx context.Context) response {
			return s.execute(ctx, "sweep", sc, ctl)
		})
		return
	}
	s.streamSweep(w, r, sc, ctl)
}

// streamSweep executes the sweep with a progress callback wired to the
// response: one NDJSON record per completed point, then a final record
// carrying the full text report (or the error). The HTTP status is committed
// before solving starts, so failures surface in the final record, not the
// status line.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, sc *deck.Scenario, ctl deck.SweepControl) {
	s.reg.Counter("serve.sweep.streams").Inc()
	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	ctx = obs.ContextWithTracer(ctx, s.cfg.Trace)
	ctx, sp := obs.StartSpan(ctx, "serve.sweep.stream")
	if sp != nil {
		defer sp.End()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(v any) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(v)
		if fl != nil {
			fl.Flush()
		}
	}
	ctl.Progress = func(p deck.SweepProgress) { emit(p) }

	opt := deck.Options{Workers: s.cfg.Workers, Trace: s.cfg.Trace, Sweep: ctl}
	res, err := deck.RunScenario(ctx, sc, opt)
	final := sweepStreamFinal{Done: true}
	if err != nil {
		s.reg.Counter("serve.errors").Inc()
		if sp != nil {
			sp.Set("error", err.Error())
		}
		final.Err = err.Error()
	} else {
		var buf bytes.Buffer
		if werr := res.WriteText(&buf); werr != nil {
			final.Err = werr.Error()
		} else {
			final.Report = buf.String()
		}
	}
	emit(final)
}

// sweepStreamFinal is the last record of a /sweep NDJSON stream.
type sweepStreamFinal struct {
	Done   bool   `json:"done"`
	Report string `json:"report,omitempty"`
	Err    string `json:"error,omitempty"`
}

// rateLimited answers a request rejected by the admission bucket.
func (s *Server) rateLimited(w http.ResponseWriter, retry time.Duration) {
	s.reg.Counter("serve.rejected").Inc()
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "solve capacity exhausted, retry later", http.StatusTooManyRequests)
}

func textResponse(status int, msg string) response {
	return response{status: status, contentType: "text/plain; charset=utf-8", body: []byte(msg)}
}

// opCoeffs and planCoeffs are the analysis-default Model A coefficients,
// matching the deck lowering's defaults so JSON and deck requests build
// value-identical models.
var (
	opCoeffs   = core.Coeffs{K1: 1.3, K2: 0.55, C1: 1}
	planCoeffs = core.Coeffs{K1: 1.6, K2: 0.8, C1: 3.5}
)

// SolveRequest is the POST /solve body: one steady-state solve of a block.
// Block starts from the paper's DefaultBlock, so the empty object solves the
// baseline geometry; materials may be stock names ("Cu") or full objects.
// All quantities are SI.
type SolveRequest struct {
	Block  stack.BlockConfig `json:"block"`
	Models deck.ModelSpec    `json:"models"`
}

// SweepRequest is the POST /sweep body: a one-parameter geometry sweep.
// Give either Values, or From/To/Points for a linear range. Param names
// match the deck's sweepable parameters (r, tl, lext, n, tsi, tsi1, td, tb);
// values are SI.
type SweepRequest struct {
	Block  stack.BlockConfig `json:"block"`
	Models deck.ModelSpec    `json:"models"`
	Param  string            `json:"param"`
	Values []float64         `json:"values,omitempty"`
	From   float64           `json:"from,omitempty"`
	To     float64           `json:"to,omitempty"`
	Points int               `json:"points,omitempty"`
	// Workers overrides the service's engine pool size for this request.
	Workers int `json:"workers,omitempty"`
	// Shard selects one chain-aligned slice of the sweep's job list, in the
	// 1-based "i/n" form (e.g. "2/5"); empty runs the whole batch. The
	// response then covers only that shard's value rows and carries a shard
	// header, letting N processes split one sweep and merge their journals.
	Shard string `json:"shard,omitempty"`
	// Stream switches the response to NDJSON: one progress record per
	// completed point (deck.SweepProgress), then a final
	// {"done":true,"report":...} record with the full text report. Streamed
	// requests bypass single-flight coalescing — each client gets its own
	// live stream.
	Stream bool `json:"stream,omitempty"`
}

// PlanRequest is the POST /plan body: a TTSV insertion-planning run. Tech
// starts from plan.DefaultTechnology; PlanePowers is [row][col][plane] watts.
type PlanRequest struct {
	Tech    plan.Technology `json:"tech"`
	Floor   plan.Floorplan  `json:"floor"`
	Budget  float64         `json:"budget"`
	Models  deck.ModelSpec  `json:"models"`
	Workers int             `json:"workers,omitempty"`
}

// decodeStrict unmarshals body into v, rejecting unknown fields and
// trailing garbage.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("decoding request: trailing data after JSON object")
	}
	return nil
}

// applyMGDefaults fills the service-level multigrid defaults into a JSON
// request's model spec when the request left the fields empty.
func (s *Server) applyMGDefaults(sp *deck.ModelSpec) {
	if sp.MGHierarchy == "" {
		sp.MGHierarchy = s.cfg.MGHierarchy
	}
	if sp.MGPrecision == "" {
		sp.MGPrecision = s.cfg.MGPrecision
	}
}

func (s *Server) lowerSolve(body []byte) (*deck.Scenario, error) {
	req := SolveRequest{Block: stack.DefaultBlock()}
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	s.applyMGDefaults(&req.Models)
	models, err := req.Models.Models("all", opCoeffs)
	if err != nil {
		return nil, err
	}
	st, err := req.Block.Build()
	if err != nil {
		return nil, err
	}
	return &deck.Scenario{
		Title:    "solve",
		Stack:    st,
		Analyses: []deck.Analysis{{Kind: "op", Op: &deck.OpAnalysis{Models: models}}},
	}, nil
}

func (s *Server) lowerSweepRequest(body []byte) (SweepRequest, *deck.Scenario, sweep.ShardSpec, error) {
	req := SweepRequest{Block: stack.DefaultBlock()}
	if err := decodeStrict(body, &req); err != nil {
		return req, nil, sweep.ShardSpec{}, err
	}
	spec, err := sweep.ParseShardSpec(req.Shard)
	if err != nil {
		return req, nil, sweep.ShardSpec{}, err
	}
	s.applyMGDefaults(&req.Models)
	models, err := req.Models.Models("all", opCoeffs)
	if err != nil {
		return req, nil, sweep.ShardSpec{}, err
	}
	base, err := req.Block.Build()
	if err != nil {
		return req, nil, sweep.ShardSpec{}, err
	}
	values := req.Values
	if len(values) == 0 {
		if req.Points < 2 {
			return req, nil, sweep.ShardSpec{}, fmt.Errorf("sweep needs values, or from/to with points >= 2 (got points=%d)", req.Points)
		}
		values = units.Linspace(req.From, req.To, req.Points)
	}
	stacks := make([]*stack.Stack, len(values))
	for i, v := range values {
		s, err := deck.ApplyParam(base, req.Param, v)
		if err != nil {
			return req, nil, sweep.ShardSpec{}, fmt.Errorf("sweep point %s=%v: %v", req.Param, v, err)
		}
		stacks[i] = s
	}
	sc := &deck.Scenario{
		Title: "sweep",
		Stack: base,
		Analyses: []deck.Analysis{{Kind: "sweep", Sweep: &deck.SweepAnalysis{
			Param: req.Param, Values: values, Stacks: stacks, Models: models, Workers: req.Workers,
		}}},
	}
	return req, sc, spec, nil
}

func (s *Server) lowerPlan(body []byte) (*deck.Scenario, error) {
	req := PlanRequest{Tech: plan.DefaultTechnology()}
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	s.applyMGDefaults(&req.Models)
	models, err := req.Models.Models("a", planCoeffs)
	if err != nil {
		return nil, err
	}
	if len(models) != 1 {
		return nil, fmt.Errorf("plan takes exactly one model, got %d", len(models))
	}
	if err := req.Floor.Validate(req.Tech); err != nil {
		return nil, err
	}
	return &deck.Scenario{
		Title: "plan",
		Analyses: []deck.Analysis{{Kind: "plan", Plan: &deck.PlanAnalysis{
			Tech: req.Tech, Floor: &req.Floor, Budget: req.Budget, Model: models[0], Workers: req.Workers,
		}}},
	}, nil
}

func lowerDeck(body []byte) (*deck.Scenario, error) {
	d, err := deck.Parse("request.ttsv", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	return d.Lower()
}

// ListenAndServe runs the service on addr until ctx is cancelled, then
// drains: the listener closes immediately, in-flight requests get up to
// drain (<= 0 selects 10s) to finish, stragglers are cut off. ready, when
// non-nil, is called with the bound address once the listener is up (addr
// may end in :0).
func ListenAndServe(ctx context.Context, addr string, cfg Config, drain time.Duration, ready func(boundAddr string)) error {
	s := New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	if drain <= 0 {
		drain = 10 * time.Second
	}
	srv := &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}
