package mg

import (
	"fmt"

	"repro/internal/sparse"
)

// Alternating-direction line smoother for the geometric hierarchy.
//
// The point Chebyshev smoother that serves the Galerkin levels fails on the
// geometric ones: full 2×-per-axis coarsening preserves a grid's anisotropy
// ratio level after level, and the layer stack's thin-layer/bulk cell aspect
// ratios leave "characteristic" error modes — oscillatory across the weakly
// coupled axis, smooth along the strong one — that a point smoother barely
// damps (their Jacobi-scaled eigenvalues are tiny) and the coarsened grid
// cannot represent. The smoothed-aggregation path sidesteps this by
// semi-coarsening each region along its own strong direction; the geometric
// path instead relaxes whole grid lines at once: solving the tridiagonal
// block of every line along an axis damps all modes oscillatory along that
// axis regardless of its coupling strength, and sweeping each axis in turn
// covers every direction the anisotropy can point. This is the classical
// robust pairing with full coarsening (Trottenberg et al., Multigrid §5.1).
//
// One smoother application is a damped multiplicative sweep over the axes:
//
//	z ← ω·T₀⁻¹ r;   z ← z + ω·T_d⁻¹ (r − A·z)   for each further axis d
//
// with T_d the block diagonal of A restricted to lines along axis d. Each
// block is strictly diagonally dominant (A's diagonal carries the other
// axes' couplings and the grounding), so the factorization exists and each
// sweep is convergent in the A-norm: A ⪯ 2·T_d because T_d + |A − T_d| is
// diagonally dominant. The pre-smoother sweeps axes in ascending order and
// the post-smoother descending — adjoint orders, which keeps the whole
// cycle a fixed symmetric positive definite operator (CG stays valid).
//
// The factors are stored per level as two arrays (unit-lower entry and
// inverse pivot per cell) — float32 in the mixed-precision cycle — and the
// solves run through the pool's line kernels: lines are independent, so
// results are bit-identical for any worker count.

// lineAxis holds the LDLᵀ factors of the tridiagonal line blocks along one
// grid axis of a level: l[i] is row i's unit-lower-triangular entry (its
// coupling to the previous cell on the line divided by that cell's pivot)
// and invc[i] the inverse pivot. Exactly one of the f64/f32 pairs is set.
type lineAxis struct {
	axis       int
	nd         [3]int
	l, invc    []float64
	l32, inv32 []float32
}

// lineOmega damps each line sweep: z += ω·T_d⁻¹(r − A·z). The undamped
// sweep merely flips the sign of the characteristic modes whose T_d-relative
// eigenvalue approaches 2 — oscillatory across an axis far weaker than the
// line's (the strong coupling cancels from T_d on modes smooth along the
// line, leaving the weak-direction operator, whose upper spectrum reaches
// λ ≈ 2) — and those modes are exactly the ones full coarsening cannot
// represent. Damping pulls every mode factor into [1−2ω, 1), so a mode
// survives the alternating sweep only by being smooth along every axis,
// which is what the coarse grid represents. ω = 0.55 minimizes W-cycle
// iterations across the grid zoo (layered/contrast plateau for
// ω ∈ [0.52, 0.62]; larger ω under-damps the λ ≈ 2 modes, smaller ω
// under-damps the mid-spectrum). The damping is baked into the stored
// inverse pivots (ω·T⁻¹ = (I+L)⁻ᵀ·(ω·C⁻¹)·(I+L)⁻¹), so it costs nothing
// per application.
const lineOmega = 0.55

// factorLines LDLᵀ-factors the tridiagonal line blocks of g along every axis
// of extent > 1, in ascending axis order — the sweep order of the smoother —
// and folds the lineOmega damping into the inverse pivots. The factorization
// runs in float64 and is rounded to float32 afterwards when f32 is set. One
// sequential ascending pass per axis, so recycled rebuilds are bit-identical
// to fresh ones.
func factorLines(g *geomGrid, f32 bool, mem *arena) ([]lineAxis, error) {
	var axes []lineAxis
	s := g.strides()
	for d := 0; d < 3; d++ {
		if g.nd[d] <= 1 {
			continue
		}
		l := mem.f64(g.n)
		invc := mem.f64(g.n)
		sd := s[d]
		off := g.off[d]
		for i := 0; i < g.n; i++ {
			c := g.diag[i]
			if g.coord(i, d) > 0 {
				lo := off[i-sd]
				li := lo * invc[i-sd]
				l[i] = li
				c -= li * lo
			} else {
				l[i] = 0
			}
			if !(c > 0) {
				return nil, fmt.Errorf("mg: line smoother pivot %g at cell %d axis %d (matrix not SPD?)", c, i, d)
			}
			invc[i] = 1 / c
		}
		for i := 0; i < g.n; i++ {
			invc[i] *= lineOmega
		}
		ax := lineAxis{axis: d, nd: g.nd}
		if f32 {
			l32 := mem.f32(g.n)
			inv32 := mem.f32(g.n)
			for i := 0; i < g.n; i++ {
				l32[i] = float32(l[i])
				inv32[i] = float32(invc[i])
			}
			ax.l32, ax.inv32 = l32, inv32
		} else {
			ax.l, ax.invc = l, invc
		}
		axes = append(axes, ax)
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("mg: grid %v has no axis to smooth along", g.nd)
	}
	return axes, nil
}

// solve computes x = T⁻¹r for the axis's line blocks through the pool's
// deterministic line kernels.
func (ax *lineAxis) solve(p *sparse.Pool, r, x []float64) {
	if ax.l32 != nil {
		p.LineSolveF32(ax.nd, ax.axis, ax.l32, ax.inv32, r, x)
	} else {
		p.LineSolve(ax.nd, ax.axis, ax.l, ax.invc, r, x)
	}
}

// smoothLines applies the alternating-direction line smoother from the zero
// initial guess: a multiplicative sweep over the level's axes, ascending
// when reverse is false (pre-smoothing), descending when true (the adjoint
// order, for post-smoothing). z must not alias r or the scratch.
func (lv *level) smoothLines(z, r []float64, p *sparse.Pool, reverse bool) {
	axes := lv.lines
	for k := range axes {
		ax := &axes[k]
		if reverse {
			ax = &axes[len(axes)-1-k]
		}
		if k == 0 {
			ax.solve(p, r, z)
			continue
		}
		p.ResidualOp(lv.op, z, r, lv.cres)
		ax.solve(p, lv.cres, lv.ct)
		p.VecAdd(z, lv.ct)
	}
}
