package mg

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// csrArrays is a read-only snapshot of a sparse.CSR's storage, extracted via
// Each (row-major, sorted columns). The mg assembly kernels need per-row
// access, which the sparse package deliberately does not export.
type csrArrays struct {
	ptr []int32
	col []int32
	val []float64
}

func extractCSR(a *sparse.CSR, mem *arena) csrArrays {
	ar := csrArrays{
		ptr: mem.i32(a.Rows() + 1),
		col: mem.i32cap(a.NNZ()),
		val: mem.f64cap(a.NNZ()),
	}
	a.Each(func(i, j int, v float64) {
		ar.ptr[i+1]++
		ar.col = append(ar.col, int32(j))
		ar.val = append(ar.val, v)
	})
	for i := 0; i < a.Rows(); i++ {
		ar.ptr[i+1] += ar.ptr[i]
	}
	mem.adoptI32(ar.col)
	mem.adoptF64(ar.val)
	return ar
}

func (a csrArrays) rows() int { return len(a.ptr) - 1 }

func (a csrArrays) diagonal(mem *arena) []float64 {
	d := mem.f64(a.rows())
	for i := range d {
		for k := a.ptr[i]; k < a.ptr[i+1]; k++ {
			if int(a.col[k]) == i {
				d[i] = a.val[k]
				break
			}
		}
	}
	return d
}

// aggregateStrength builds the fine→coarse cell map by repeated pairwise
// matching on coupling strength: each pass walks the cells in index order
// and joins every still-free cell with its most strongly coupled free
// neighbor, measured by the scaled off-diagonal |a_ij|/√(a_ii·a_jj) (the
// scaling makes couplings comparable across the orders-of-magnitude cell
// volume spread of graded axisymmetric meshes). passes chained matchings —
// each on the Galerkin operator of the previous — grow aggregates of up to
// 2^passes cells.
//
// Matching the matrix rather than the mesh is what handles the layer
// stack's heterogeneous anisotropy: a thin ILD cell couples hardest to its
// z-neighbors, a tall bulk substrate cell to its r-neighbors, so the same
// sweep semi-coarsens z across the thin layers and r in the bulk — no
// global axis choice could do both. Walk order and tie-breaks (first
// strongest neighbor in CSR column order) are fixed, so the aggregation is
// a pure function of the matrix.
func aggregateStrength(a csrArrays, passes int, mem *arena) ([]int32, int) {
	agg, nc := matchPairs(a, mem)
	for p := 1; p < passes; p++ {
		coarse := galerkinAggregated(a, agg, nc, mem)
		agg2, nc2 := matchPairs(coarse, mem)
		if nc2 == nc {
			break
		}
		for i, c := range agg {
			agg[i] = agg2[c]
		}
		nc = nc2
	}
	return agg, nc
}

// matchPairs is one greedy matching pass (see aggregateStrength).
func matchPairs(a csrArrays, mem *arena) ([]int32, int) {
	n := a.rows()
	diag := a.diagonal(mem)
	agg := mem.i32(n)
	for i := range agg {
		agg[i] = -1
	}
	var nc int32
	for i := 0; i < n; i++ {
		if agg[i] >= 0 {
			continue
		}
		best := int32(-1)
		bestW := 0.0
		for k := a.ptr[i]; k < a.ptr[i+1]; k++ {
			j := a.col[k]
			if int(j) == i || agg[j] >= 0 {
				continue
			}
			den := diag[i] * diag[j]
			if den <= 0 {
				continue
			}
			if w := math.Abs(a.val[k]) / math.Sqrt(den); w > bestW {
				bestW = w
				best = j
			}
		}
		agg[i] = nc
		if best >= 0 {
			agg[best] = nc
		}
		nc++
	}
	return agg, int(nc)
}

// sortInt32 is an insertion sort for the short per-row column lists the
// assembly accumulators produce (coarse stencils stay a few dozen wide
// thanks to prolongation filtering). sort.Slice on these tiny slices cost
// more in reflection overhead than the whole numeric triple product.
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// rowAccumulator gathers one output row of a sparse product: a dense value
// array indexed by column plus the list of touched columns, flushed in
// sorted order so every assembled matrix has the canonical CSR layout
// without a global sort.
type rowAccumulator struct {
	acc     []float64
	seen    []bool
	touched []int32
}

// newRowAccumulator sizes the dense accumulator off the arena. The touched
// list stays on the heap: it is tiny (one stencil's width) and append-managed
// across thousands of flushes.
func newRowAccumulator(n int, mem *arena) *rowAccumulator {
	return &rowAccumulator{acc: mem.f64(n), seen: mem.bools(n)}
}

func (r *rowAccumulator) add(c int32, v float64) {
	if !r.seen[c] {
		r.seen[c] = true
		r.touched = append(r.touched, c)
	}
	r.acc[c] += v
}

// flush appends the accumulated row to (col, val) in ascending column
// order, dropping exact zeros, and resets the accumulator.
func (r *rowAccumulator) flush(col []int32, val []float64) ([]int32, []float64) {
	sortInt32(r.touched)
	for _, c := range r.touched {
		if v := r.acc[c]; v != 0 {
			col = append(col, c)
			val = append(val, v)
		}
		r.acc[c] = 0
		r.seen[c] = false
	}
	r.touched = r.touched[:0]
	return col, val
}

// groupByAggregate inverts the fine→coarse map: members lists fine cells
// coarse row by coarse row (a counting sort, so member order is ascending
// fine index).
func groupByAggregate(agg []int32, nc int, mem *arena) (ptr []int32, members []int32) {
	ptr = mem.i32(nc + 1)
	for _, c := range agg {
		ptr[c+1]++
	}
	for c := 0; c < nc; c++ {
		ptr[c+1] += ptr[c]
	}
	members = mem.i32(len(agg))
	next := mem.i32(nc)
	copy(next, ptr[:nc])
	for i, c := range agg {
		members[next[c]] = int32(i)
		next[c]++
	}
	return ptr, members
}

// galerkinAggregated is the unsmoothed Galerkin product P_aggᵀ·A·P_agg for a
// 0/1 aggregation: every fine entry accumulates into its aggregate pair.
// Used between matching passes, where the pair-level coupling strengths —
// not a solver-grade operator — are what the next pass needs.
func galerkinAggregated(a csrArrays, agg []int32, nc int, mem *arena) csrArrays {
	mPtr, members := groupByAggregate(agg, nc, mem)
	out := csrArrays{ptr: mem.i32(nc + 1), col: mem.i32cap(len(a.col)), val: mem.f64cap(len(a.val))}
	acc := newRowAccumulator(nc, mem)
	for ic := 0; ic < nc; ic++ {
		for m := mPtr[ic]; m < mPtr[ic+1]; m++ {
			i := members[m]
			for k := a.ptr[i]; k < a.ptr[i+1]; k++ {
				acc.add(agg[a.col[k]], a.val[k])
			}
		}
		out.col, out.val = acc.flush(out.col, out.val)
		out.ptr[ic+1] = int32(len(out.col))
	}
	mem.adoptI32(out.col)
	mem.adoptF64(out.val)
	return out
}

// transfer is a level's smoothed-aggregation prolongation P, stored twice in
// CSR layout: by fine row (p*) for the prolongation x += P·e, and by coarse
// row (pt*) for the restriction b_c = Pᵀ·r. Both kernels parallelize over
// their respective output rows with a fixed per-row summation order, so they
// are bit-identical for any worker count.
type transfer struct {
	pPtr, pCol   []int32
	pVal         []float64
	ptPtr, ptCol []int32
	ptVal        []float64
	// pVal32/ptVal32 replace pVal/ptVal on a mixed-precision hierarchy
	// (Options.Precision f32): the cycle dispatches on them being non-nil
	// and runs the f32 raw-matvec kernels instead.
	pVal32, ptVal32 []float32
}

// saOmega is the prolongation-smoothing damping 4/(3·λmax) applied to the
// Jacobi-scaled operator — the standard smoothed-aggregation choice, which
// damps the tentative prolongation's high-frequency content without
// overshooting on the upper spectrum.
const saOmega = 4.0 / 3.0

// smoothedProlongation builds P = (I − ω·D⁻¹A)·P_agg from the tentative
// piecewise-constant aggregation prolongation. Plain aggregation transfers
// represent smooth error so poorly that V-cycle convergence degrades with
// every added level; one damped-Jacobi smoothing pass fixes the
// approximation property and keeps the hierarchy's convergence rate
// mesh-independent. The rows of P follow A's sparsity (plus the diagonal),
// assembled deterministically through the sorted COO→CSR path.
func smoothedProlongation(a csrArrays, invDiag []float64, lmax float64, agg []int32, nc int, dropTol float64, mem *arena) *transfer {
	n := len(invDiag)
	omega := saOmega / lmax
	p := csrArrays{ptr: mem.i32(n + 1), col: mem.i32cap(len(a.col) + n), val: mem.f64cap(len(a.val) + n)}
	acc := newRowAccumulator(nc, mem)
	for i := 0; i < n; i++ {
		acc.add(agg[i], 1)
		s := omega * invDiag[i]
		for k := a.ptr[i]; k < a.ptr[i+1]; k++ {
			acc.add(agg[a.col[k]], -s*a.val[k])
		}
		p.col, p.val = acc.flush(p.col, p.val)
		p.ptr[i+1] = int32(len(p.col))
	}
	mem.adoptI32(p.col)
	mem.adoptF64(p.val)
	p = filterRows(p, dropTol, mem)
	pt := transpose(p, nc, mem)
	return &transfer{
		pPtr: p.ptr, pCol: p.col, pVal: p.val,
		ptPtr: pt.ptr, ptCol: pt.col, ptVal: pt.val,
	}
}

// transpose flips an n×nc CSR to nc×n by counting sort: scatter in fine-row
// order lands every transposed row with ascending columns, no sort needed.
func transpose(p csrArrays, nc int, mem *arena) csrArrays {
	nnz := len(p.col)
	pt := csrArrays{
		ptr: mem.i32(nc + 1),
		col: mem.i32(nnz),
		val: mem.f64(nnz),
	}
	for _, c := range p.col {
		pt.ptr[c+1]++
	}
	for c := 0; c < nc; c++ {
		pt.ptr[c+1] += pt.ptr[c]
	}
	next := mem.i32(nc)
	copy(next, pt.ptr[:nc])
	for i := 0; i < p.rows(); i++ {
		for k := p.ptr[i]; k < p.ptr[i+1]; k++ {
			c := p.col[k]
			pt.col[next[c]] = int32(i)
			pt.val[next[c]] = p.val[k]
			next[c]++
		}
	}
	return pt
}

// galerkin assembles the coarse operator A_c = Pᵀ·A·P as two sparse
// products over a dense row accumulator. Assembly is sequential (it runs
// once per hierarchy build) and every row is flushed in sorted column
// order, so the coarse matrix is independent of everything but the fine
// matrix and the aggregation.
func galerkin(a csrArrays, t *transfer, nc int, mem *arena) (*sparse.CSR, error) {
	// Phase 1: W = A·P, each fine row computed exactly once. Folding this
	// into the coarse-row loop instead would recompute row i of A·P for
	// every coarse row whose restriction touches i — roughly a |P row|-fold
	// (~10×) blowup that dominated hierarchy construction.
	n := a.rows()
	acc := newRowAccumulator(nc, mem)
	w := csrArrays{ptr: mem.i32(n + 1), col: mem.i32cap(3 * len(a.col)), val: mem.f64cap(3 * len(a.val))}
	for i := 0; i < n; i++ {
		for ka := a.ptr[i]; ka < a.ptr[i+1]; ka++ {
			j := a.col[ka]
			av := a.val[ka]
			for kj := t.pPtr[j]; kj < t.pPtr[j+1]; kj++ {
				acc.add(t.pCol[kj], av*t.pVal[kj])
			}
		}
		w.col, w.val = acc.flush(w.col, w.val)
		w.ptr[i+1] = int32(len(w.col))
	}
	mem.adoptI32(w.col)
	mem.adoptF64(w.val)
	// Phase 2: A_c = Pᵀ·W, one coarse row at a time. The value and index
	// arrays are adopted by the returned CSR, which the hierarchy retains —
	// they recycle with the rest of the arena when the hierarchy is donated
	// to a later Build.
	rowPtr := mem.ints(nc + 1)
	col := mem.i32cap(len(a.col))
	val := mem.f64cap(len(a.val))
	for ic := 0; ic < nc; ic++ {
		for kf := t.ptPtr[ic]; kf < t.ptPtr[ic+1]; kf++ {
			i := t.ptCol[kf]
			pv := t.ptVal[kf]
			for kw := w.ptr[i]; kw < w.ptr[i+1]; kw++ {
				acc.add(w.col[kw], pv*w.val[kw])
			}
		}
		col, val = acc.flush(col, val)
		rowPtr[ic+1] = len(col)
	}
	mem.adoptI32(col)
	mem.adoptF64(val)
	colIdx := mem.ints(len(col))
	for k, c := range col {
		colIdx[k] = int(c)
	}
	return sparse.NewCSRFromSorted(nc, nc, rowPtr, colIdx, val)
}

// pDropTol filters the smoothed prolongation: entries below pDropTol times
// the row's largest magnitude are dropped and the survivors rescaled to
// keep the row sum (constants stay exactly representable). Smoothing widens
// P at every level and the Galerkin stencils compound on top — without
// filtering, deep coarse levels densify and hierarchy construction goes
// quadratic. Filtering P rather than the coarse operator keeps A_c a true
// Galerkin product PᵀAP, so positive definiteness is inherited instead of
// maintained by hand. (Sparsifying A_c directly with |a_ij| lumped into the
// diagonals keeps SPD but destroys the row sums the aggregation nullspace
// relies on — measured 10× iteration blow-up on the stack systems — so the
// prolongation is the only place filtering is safe.) The value trades
// transfer quality against coarse-stencil growth; 0.02 minimizes total
// build+solve time across the reference resolutions.
const pDropTol = 0.02

// filterRows applies pDropTol row filtering (see above) in place on
// freshly extracted prolongation arrays.
func filterRows(p csrArrays, dropTol float64, mem *arena) csrArrays {
	out := csrArrays{ptr: mem.i32(len(p.ptr)), col: mem.i32cap(len(p.col)), val: mem.f64cap(len(p.val))}
	for i := 0; i < p.rows(); i++ {
		lo, hi := p.ptr[i], p.ptr[i+1]
		var wmax, sum float64
		for k := lo; k < hi; k++ {
			if w := math.Abs(p.val[k]); w > wmax {
				wmax = w
			}
			sum += p.val[k]
		}
		cut := dropTol * wmax
		var kept float64
		for k := lo; k < hi; k++ {
			if math.Abs(p.val[k]) >= cut {
				kept += p.val[k]
			}
		}
		scale := 1.0
		if kept != 0 {
			scale = sum / kept
		}
		for k := lo; k < hi; k++ {
			if math.Abs(p.val[k]) >= cut {
				out.col = append(out.col, p.col[k])
				out.val = append(out.val, scale*p.val[k])
			}
		}
		out.ptr[i+1] = int32(len(out.col))
	}
	mem.adoptI32(out.col)
	mem.adoptF64(out.val)
	return out
}

// denseFrom expands the (small) coarsest matrix for direct factorization.
func denseFrom(a *sparse.CSR, mem *arena) *linalg.Matrix {
	m := linalg.NewMatrixWithData(a.Rows(), a.Cols(), mem.f64(a.Rows()*a.Cols()))
	a.Each(func(i, j int, v float64) {
		m.Set(i, j, v)
	})
	return m
}
