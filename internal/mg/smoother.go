package mg

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// newSmoother prepares the level's Chebyshev smoother: the inverse diagonal
// and the eigenvalue bounds [λmax/rng, λmax] of the Jacobi-scaled operator
// B = D⁻¹A (Gershgorin upper bound). Unlike the standalone Chebyshev
// preconditioner — which targets the whole spectrum — a smoother only has
// to damp the upper part; the coarse-grid correction handles the rest. A
// narrower interval makes the low-degree polynomial far more effective on
// the modes it owns.
func (lv *level) newSmoother(rng float64, mem *arena) error {
	a := lv.a
	n := a.Rows()
	inv := mem.f64(n)
	d := a.DiagonalInto(mem.f64(n))
	for i, v := range d {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("mg: diagonal %g at row %d of a %d-cell level (matrix not SPD?)", v, i, n)
		}
		inv[i] = 1 / v
	}
	rowAbs := mem.f64(n)
	a.Each(func(i, _ int, v float64) { rowAbs[i] += math.Abs(v) })
	var lmax float64
	for i := 0; i < n; i++ {
		if b := rowAbs[i] * inv[i]; b > lmax {
			lmax = b
		}
	}
	if lmax <= 0 || math.IsNaN(lmax) || math.IsInf(lmax, 0) {
		return fmt.Errorf("mg: smoother eigenvalue bound %g", lmax)
	}
	lmin := lmax / rng
	lv.invDiag = inv
	lv.lmax = lmax
	lv.theta = (lmax + lmin) / 2
	lv.delta = (lmax - lmin) / 2
	return nil
}

// smooth runs the fixed-degree Chebyshev semi-iteration on B·z = D⁻¹r from
// z = 0 (Saad, Iterative Methods, alg. 12.1), the same recurrence as
// sparse's Chebyshev preconditioner but with smoother bounds. z is a fixed
// polynomial in B applied to D⁻¹r — a linear, symmetric operation — and
// every step is a pooled matvec or element-wise update, so the result is
// bit-identical for any worker count. z must not alias r or the scratch.
func (lv *level) smooth(z, r []float64, p *sparse.Pool) {
	a, invD := lv.op, lv.invDiag
	d, res, t := lv.cd, lv.cres, lv.ct
	// The element-wise recurrence steps run through sparse's fused Cheby
	// kernels: a smoother application sits inside every vcycle of every CG
	// iteration, and closure-based Range calls here allocated on each one.
	p.ChebyBegin(z, d, res, invD, r, 1/lv.theta)
	sigma := lv.theta / lv.delta
	rhoOld := 1 / sigma
	for k := 2; k <= lv.degree; k++ {
		p.MulVecOp(a, d, t)
		rho := 1 / (2*sigma - rhoOld)
		p.ChebyStep(z, d, res, invD, t, rho*rhoOld, 2*rho/lv.delta)
		rhoOld = rho
	}
}
