package mg

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// newSmoother prepares the level's Chebyshev smoother: the inverse diagonal
// and the eigenvalue bounds [λmax/rng, λmax] of the Jacobi-scaled operator
// B = D⁻¹A (Gershgorin upper bound). Unlike the standalone Chebyshev
// preconditioner — which targets the whole spectrum — a smoother only has
// to damp the upper part; the coarse-grid correction handles the rest. A
// narrower interval makes the low-degree polynomial far more effective on
// the modes it owns. It reads the level through the Operator interface, so
// the coefficient-backed geometric levels need no assembled CSR.
func (lv *level) newSmoother(rng float64, mem *arena) error {
	op := lv.op
	n := op.Rows()
	d := op.DiagonalInto(mem.f64(n))
	inv := mem.f64(n)
	for i, v := range d {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("mg: diagonal %g at row %d of a %d-cell level (matrix not SPD?)", v, i, n)
		}
		inv[i] = 1 / v
	}
	rowAbs := op.AbsRowSumsInto(mem.f64(n))
	var lmax float64
	for i := 0; i < n; i++ {
		if b := rowAbs[i] * inv[i]; b > lmax {
			lmax = b
		}
	}
	if lmax <= 0 || math.IsNaN(lmax) || math.IsInf(lmax, 0) {
		return fmt.Errorf("mg: smoother eigenvalue bound %g", lmax)
	}
	lmin := lmax / rng
	lv.invDiag = inv
	lv.lmax = lmax
	lv.theta = (lmax + lmin) / 2
	lv.delta = (lmax - lmin) / 2
	return nil
}

// smooth applies the level's smoother to B·z = ?·r from z = 0: the fixed-
// degree Chebyshev semi-iteration on the Jacobi-scaled operator (Saad,
// Iterative Methods, alg. 12.1) for Galerkin levels, the alternating-
// direction line relaxation for geometric levels (see smoothLines). Either
// way z is a fixed linear operator applied to r, every step a pooled matvec,
// line solve or element-wise update on the deterministic chunk grid, so the
// result is bit-identical for any worker count. z must not alias r or the
// scratch. reverse selects the adjoint sweep order (meaningful only for the
// line smoother, whose axis sweeps do not commute): the post-smoother passes
// true so the cycle stays a symmetric operator.
func (lv *level) smooth(z, r []float64, p *sparse.Pool, reverse bool) {
	if lv.lines != nil {
		lv.smoothLines(z, r, p, reverse)
		return
	}
	a := lv.op
	d, res, t := lv.cd, lv.cres, lv.ct
	// The element-wise recurrence steps run through sparse's fused Cheby
	// kernels: a smoother application sits inside every vcycle of every CG
	// iteration, and closure-based Range calls here allocated on each one.
	sigma := lv.theta / lv.delta
	rhoOld := 1 / sigma
	invD := lv.invDiag
	p.ChebyBegin(z, d, res, invD, r, 1/lv.theta)
	for k := 2; k <= lv.degree; k++ {
		p.MulVecOp(a, d, t)
		rho := 1 / (2*sigma - rhoOld)
		p.ChebyStep(z, d, res, invD, t, rho*rhoOld, 2*rho/lv.delta)
		rhoOld = rho
	}
}
