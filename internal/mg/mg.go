// Package mg implements a geometric multigrid preconditioner for the
// structured tensor-product grids behind the finite-volume reference solver
// (internal/fem): the axisymmetric (r, z) grid and the 3-D Cartesian grid.
//
// The hierarchy is built once per matrix by smoothed-aggregation coarsening:
// fine cells are paired into aggregates by coupling strength, and the
// tentative piecewise-constant prolongation is smoothed by one damped-Jacobi
// pass, P = (I − ω·D⁻¹A)·P_agg, before the Galerkin product A_c = Pᵀ·A·P
// forms the coarse operator. The smoothing step is what makes the V-cycle
// convergence rate mesh-independent — plain aggregation transfers represent
// smooth error so poorly that iteration counts grow with refinement — and
// the Jacobi weighting adapts the transfers to the strong material jumps of
// a via stack (copper/SiO2/polyimide span four orders of magnitude in k).
//
// Anisotropy: the layer stack mixes sub-micron ILD/liner cells with
// hundred-micron bulk cells, and which direction couples strongly flips
// from region to region (z across the thin layers, r in the tall graded
// substrate cells). Aggregates therefore come from strength-based pairwise
// matching on the matrix itself rather than a per-axis mesh rule: each cell
// joins its most strongly coupled neighbor, which semi-coarsens every
// region along its own strong direction (see aggregateStrength).
//
// Applied as a preconditioner, one V-cycle with fixed-degree Chebyshev
// smoothing is a fixed linear SPD operator (CG stays valid), built entirely
// from matrix products, transfers and element-wise updates on the
// deterministic chunk grid of internal/sparse.Pool — solves are
// bit-identical for any worker count.
package mg

import (
	"fmt"
	"time"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// HierarchyKind selects how the coarse operators of a hierarchy are built.
type HierarchyKind int

const (
	// HierarchyGalerkin (the default) coarsens by smoothed aggregation and
	// forms each coarse operator as the Galerkin product A_c = Pᵀ·A·P — two
	// sparse matrix-matrix products per level, stored as CSRs. Robust on any
	// SPD input, at the cost of dominating fresh-build wall time and memory.
	HierarchyGalerkin HierarchyKind = iota
	// HierarchyGeometric re-discretizes each coarse level directly from the
	// fine level's 7-point stencil coefficients: fine cells are merged 2×
	// per axis and the face conductances collapse by series/parallel
	// composition, yielding a coefficient-backed sparse.Stencil per level —
	// no sparse matrix products, no coarse CSR storage, an O(n) build. It
	// requires the matrix to be a structured-grid stencil with nonpositive
	// off-diagonals (the fem finite-volume systems qualify); Build fails on
	// anything else. Geometric levels pair Jacobi-smoothed box transfers
	// with an alternating-direction line smoother (full coarsening keeps
	// each level's anisotropy, which defeats point smoothing) and default
	// to a truncated W-cycle (Gamma 2); on the fem stacks the combination
	// takes fewer CG iterations than the Galerkin hierarchy.
	HierarchyGeometric
)

func (k HierarchyKind) String() string {
	switch k {
	case HierarchyGalerkin:
		return "galerkin"
	case HierarchyGeometric:
		return "geometric"
	default:
		return fmt.Sprintf("HierarchyKind(%d)", int(k))
	}
}

// ParseHierarchy converts a command-line or deck spelling into a
// HierarchyKind. "auto", "default" and "" select Galerkin.
func ParseHierarchy(s string) (HierarchyKind, error) {
	switch s {
	case "auto", "default", "", "galerkin":
		return HierarchyGalerkin, nil
	case "geometric", "geom":
		return HierarchyGeometric, nil
	}
	return HierarchyGalerkin, fmt.Errorf("mg: unknown hierarchy %q (want auto, galerkin or geometric)", s)
}

// PrecisionKind selects the storage precision of the hierarchy's
// preconditioner data (line-smoother factors, transfer values, coarse
// stencil coefficients). The outer CG and every residual stay float64 either way —
// the preconditioner only shapes the Krylov space, so converged answers stay
// within solver tolerance of the full-precision run.
type PrecisionKind int

const (
	// PrecisionF64 (the default) stores everything as float64.
	PrecisionF64 PrecisionKind = iota
	// PrecisionF32 stores smoother/transfer/coarse-stencil data as float32,
	// widened per term inside the kernels — roughly halving preconditioner
	// memory traffic. Only the geometric hierarchy supports it (the Galerkin
	// CSR kernels are float64-only).
	PrecisionF32
)

func (k PrecisionKind) String() string {
	switch k {
	case PrecisionF64:
		return "f64"
	case PrecisionF32:
		return "f32"
	default:
		return fmt.Sprintf("PrecisionKind(%d)", int(k))
	}
}

// ParsePrecision converts a command-line or deck spelling into a
// PrecisionKind. "auto", "default" and "" select f64.
func ParsePrecision(s string) (PrecisionKind, error) {
	switch s {
	case "auto", "default", "", "f64", "float64":
		return PrecisionF64, nil
	case "f32", "float32":
		return PrecisionF32, nil
	}
	return PrecisionF64, fmt.Errorf("mg: unknown precision %q (want auto, f64 or f32)", s)
}

// Options tunes hierarchy construction. The zero value selects defaults
// appropriate for the heat-conduction systems in this repository.
type Options struct {
	// Hierarchy selects how coarse operators are built; see HierarchyKind.
	// The zero value is HierarchyGalerkin.
	Hierarchy HierarchyKind
	// Precision selects the preconditioner-data storage precision; see
	// PrecisionKind. The zero value is PrecisionF64. PrecisionF32 requires
	// HierarchyGeometric.
	Precision PrecisionKind
	// CoarsestSize stops coarsening once a level has at most this many
	// unknowns; that level is solved directly by dense Cholesky.
	// Zero means 400.
	CoarsestSize int
	// SmootherDegree is the Chebyshev smoother's polynomial degree per pre-
	// and post-smoothing application. Zero means 2.
	SmootherDegree int
	// SmootherRange sets the smoother's target interval [λmax/SmootherRange,
	// λmax] on the Jacobi-scaled spectrum. Zero means 8.
	SmootherRange float64
	// PairPasses is the number of chained pairwise matchings per level;
	// aggregates reach up to 2^PairPasses cells. Zero means 1: pairs only,
	// the gentlest coarsening. On the stack systems the resulting two-cell
	// aggregates cut CG iteration counts 2–4× below four-cell ones — the
	// smoothed transfers approximate pairs far better — and the deeper
	// hierarchy stays cheap because each level also halves.
	PairPasses int
	// MaxLevels caps the hierarchy depth. Zero means 24.
	MaxLevels int
	// Gamma is the number of coarse-grid visits per cycle below
	// GammaFromLevel: 1 gives a pure V-cycle, 2 a truncated W-cycle (each
	// extra visit is an additive residual correction, so the cycle stays a
	// fixed symmetric operator and CG remains valid). Zero means 1 — the
	// V-cycle — for the Galerkin hierarchy: on the nested mesh families
	// fem's grading-preserving refinement produces, its V-cycle iteration
	// counts are already mesh-independent, so extra visits only add wall
	// time. For the geometric hierarchy zero means 2: full coarsening
	// halves resolution per axis every level, so the cheap extra coarse
	// visits buy back what the faster coarsening loses. Negative forces 1
	// in either mode.
	Gamma int
	// GammaFromLevel is the first level index whose recursion into the next
	// coarser level runs Gamma times; shallower levels recurse once. Zero
	// and negative mean 0 (from the finest level).
	GammaFromLevel int
	// DeepPairPasses is the pairwise-matching pass count for levels at index
	// DeepAggLevel and beyond: deeper coarsening (up to 2^DeepPairPasses-cell
	// aggregates) where the compounding Galerkin stencil growth makes extra
	// levels expensive. Zero means 2; negative means PairPasses everywhere.
	DeepPairPasses int
	// DeepAggLevel is the first level index coarsened with DeepPairPasses.
	// Zero disables deep aggregation — the default: gentle pairs converge
	// strictly better, and on nested refinements the Galerkin
	// densification the deep passes guard against stays mild (watch the
	// mg.level*.density gauges). Negative means every level.
	DeepAggLevel int
	// Prev optionally donates a previous hierarchy whose backing arrays are
	// recycled through the build's internal arena — the re-Galerkin path for
	// parameter sweeps, where each point's operator shares the sparsity
	// pattern of the last. The rebuild recomputes aggregation, transfers and
	// coarse operators from the new matrix (falling back to nothing: a
	// recycled build IS a full build, just without the allocations), so the
	// result is bit-identical to a fresh Build. Prev is consumed: it must not
	// be cycled again afterwards, even when Build fails.
	Prev *Hierarchy
}

func (o Options) coarsestSize() int { return intDefault(o.CoarsestSize, 400) }
func (o Options) degree() int       { return intDefault(o.SmootherDegree, 2) }
func (o Options) pairPasses() int   { return intDefault(o.PairPasses, 1) }
func (o Options) maxLevels() int    { return intDefault(o.MaxLevels, 24) }

func (o Options) gamma() int {
	if o.Gamma < 0 {
		return 1
	}
	// The geometric hierarchy defaults to the truncated W-cycle to match
	// the smoothed-aggregation V-cycle's convergence; Galerkin keeps the
	// plain V-cycle (see Options.Gamma).
	if o.Gamma == 0 && o.Hierarchy == HierarchyGeometric {
		return 2
	}
	return intDefault(o.Gamma, 1)
}

func (o Options) gammaFromLevel() int {
	if o.GammaFromLevel < 0 {
		return 0
	}
	return intDefault(o.GammaFromLevel, 0)
}

func (o Options) deepPairPasses() int {
	if o.DeepPairPasses < 0 {
		return o.pairPasses()
	}
	return intDefault(o.DeepPairPasses, 2)
}

func (o Options) deepAggLevel() int {
	if o.DeepAggLevel < 0 {
		return 0
	}
	return intDefault(o.DeepAggLevel, 1<<30) // zero: deep aggregation off
}

func (o Options) smootherRange() float64 {
	if o.SmootherRange > 1 {
		return o.SmootherRange
	}
	return 8
}

func intDefault(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

// level is one grid of the hierarchy plus its transfer to the next-coarser
// one. Scratch vectors live here so a cycle allocates nothing; consequently
// a Hierarchy serves one solve at a time (like sparse.Pool).
type level struct {
	// a is the level's assembled CSR. The geometric hierarchy's coarse
	// levels never assemble one: they carry only a coefficient-backed
	// stencil in op, and a stays nil.
	a *sparse.CSR
	// op is the operator the level's matrix products run through. A
	// Galerkin level starts at its assembled CSR; SetFineOperator can
	// redirect the finest level to a matrix-free equivalent (fem's
	// structured-grid stencil), which must match a bit for bit — the
	// smoother bounds and the coarse hierarchy are built from a, so a
	// mismatched operator would desynchronize them silently.
	op sparse.Operator

	// Chebyshev smoother data (see newSmoother). lmax is the Gershgorin
	// bound on the Jacobi-scaled spectrum, reused as the prolongation-
	// smoothing scale.
	invDiag      []float64
	lmax         float64
	theta, delta float64
	degree       int

	// lines switches the level to the alternating-direction line smoother
	// (see linesmooth.go) — set on every geometric level, nil on Galerkin
	// ones, which keep the Chebyshev smoother. Its factors are float32 in
	// the mixed-precision cycle (Options.Precision).
	lines []lineAxis

	// Smoothed-aggregation transfer to the next-coarser level; nil on the
	// coarsest level.
	tr *transfer

	// Scratch: b/x are this level's restricted problem (unused on the finest
	// level, whose vectors belong to the caller), res the running residual,
	// e the post-smoothing correction, and cd/cres/ct the Chebyshev
	// iteration state.
	b, x, res, e []float64
	cd, cres, ct []float64
	// b2/x2 carry the extra residual corrections of the truncated W-cycle
	// (nil on the finest level, which is never a Gamma target). They must
	// not alias the vectors above: the correction wraps around a full
	// vcycle, which consumes every other scratch slot on this level.
	b2, x2 []float64
}

// Hierarchy is a built multigrid preconditioner. It implements
// sparse.MGSolver. Build once per matrix and reuse across solves with the
// same operator (e.g. every implicit step of a transient integration); not
// safe for concurrent cycles.
type Hierarchy struct {
	levels []*level
	coarse *linalg.Cholesky

	// gamma/gammaFrom freeze the cycle shape chosen at Build time (see
	// Options.Gamma): levels at index >= gammaFrom visit their coarse level
	// gamma times per cycle.
	gamma, gammaFrom int

	// geometric and f32 record the hierarchy mode and storage precision
	// chosen at Build time, for metrics and diagnostics.
	geometric bool
	f32       bool

	// ar owns every array behind the hierarchy; Build(Options{Prev: h})
	// resets and reuses it, which is why a donated hierarchy must never be
	// cycled again.
	ar *arena

	// Metric handles bound at Build time so cycling never takes the
	// registry lock. Both are nil when the obs default registry is disabled,
	// which reduces the per-cycle instrumentation to one nil check.
	cycles    *obs.Counter
	levelWall []*obs.Histogram
}

// Build constructs a hierarchy for the n-unknown matrix a laid out on a
// structured grid with the given per-axis cell counts, fastest-varying axis
// first (the fem convention: axi index = iz·nr + ir has dims [nr, nz]; cart
// index = (iz·ny + iy)·nx + ix has dims [nx, ny, nz]). The dims only
// cross-check the caller's layout — aggregation itself reads coupling
// strengths off the matrix. The matrix must be symmetric positive definite
// with a positive diagonal; Build fails — and the caller falls back to a
// single-level preconditioner — when it is not, or when it cannot coarsen.
func Build(a *sparse.CSR, dims []int, opt Options) (*Hierarchy, error) {
	buildStart := time.Now()
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("mg: matrix %dx%d is not square", a.Rows(), a.Cols())
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("mg: no grid dimensions")
	}
	cells := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("mg: invalid grid dimensions %v", dims)
		}
		cells *= d
	}
	if cells != n {
		return nil, fmt.Errorf("mg: grid %v has %d cells, matrix has %d rows", dims, cells, n)
	}
	if opt.Precision == PrecisionF32 && opt.Hierarchy != HierarchyGeometric {
		return nil, fmt.Errorf("mg: Precision f32 requires the geometric hierarchy (the Galerkin CSR kernels are float64-only)")
	}

	// Recycle the donated hierarchy's arena when there is one; every
	// allocation below comes out of it, so a steady-state sweep rebuild
	// allocates (almost) nothing. A fresh build seeds an arena of its own,
	// making any hierarchy a valid donor later.
	mem := &arena{}
	reused := false
	if opt.Prev != nil && opt.Prev.ar != nil {
		mem = opt.Prev.ar
		mem.reset()
		opt.Prev.ar = nil // the donor must never be cycled again
		opt.Prev.levels = nil
		reused = true
	}
	h := &Hierarchy{ar: mem, gamma: opt.gamma(), gammaFrom: opt.gammaFromLevel(),
		geometric: opt.Hierarchy == HierarchyGeometric, f32: opt.Precision == PrecisionF32}
	if opt.Hierarchy == HierarchyGeometric {
		if err := h.buildGeometric(a, dims, opt, mem); err != nil {
			return nil, err
		}
	} else if err := h.buildGalerkin(a, opt, mem); err != nil {
		return nil, err
	}
	h.bindMetrics(time.Since(buildStart), reused)
	return h, nil
}

// buildGalerkin runs the smoothed-aggregation coarsening loop and factors the
// coarsest Galerkin operator.
func (h *Hierarchy) buildGalerkin(a *sparse.CSR, opt Options, mem *arena) error {
	n := a.Rows()
	for {
		lv, err := newLevel(a, opt, mem)
		if err != nil {
			return err
		}
		if len(h.levels) > 0 && h.gamma > 1 {
			// This level can be a W-cycle recursion target: give it the
			// dedicated correction scratch (never the finest level, whose
			// vectors belong to the caller).
			lv.b2 = mem.f64(a.Rows())
			lv.x2 = mem.f64(a.Rows())
		}
		h.levels = append(h.levels, lv)
		if a.Rows() <= opt.coarsestSize() || len(h.levels) >= opt.maxLevels() {
			break
		}
		// Gentle pairwise coarsening everywhere by default; deeper
		// aggregates below DeepAggLevel when the caller opts in (see
		// Options.DeepAggLevel).
		passes := opt.pairPasses()
		if len(h.levels) > opt.deepAggLevel() {
			passes = opt.deepPairPasses()
		}
		ar := extractCSR(a, mem)
		agg, nc := aggregateStrength(ar, passes, mem)
		if nc >= a.Rows() {
			break
		}
		lv.tr = smoothedProlongation(ar, lv.invDiag, lv.lmax, agg, nc, pDropTol, mem)
		if a, err = galerkin(ar, lv.tr, nc, mem); err != nil {
			return fmt.Errorf("mg: level %d coarse operator: %w", len(h.levels), err)
		}
	}
	if len(h.levels) < 2 {
		return fmt.Errorf("mg: %d unknowns cannot coarsen (already at or below the coarse-solve size)", n)
	}
	// Direct coarse solve: factor once, backsolve per cycle. A factorization
	// failure means the Galerkin operator lost positive definiteness, i.e.
	// the input matrix was not SPD — report it instead of cycling divergently.
	bottom := h.levels[len(h.levels)-1].a
	nb := bottom.Rows()
	chol, err := linalg.FactorizeCholeskyInto(denseFrom(bottom, mem),
		linalg.NewMatrixWithData(nb, nb, mem.f64(nb*nb)))
	if err != nil {
		return fmt.Errorf("mg: coarse-grid factorization: %w", err)
	}
	h.coarse = chol
	return nil
}

// bindMetrics records the finished build and caches per-level handles so
// Cycle records without touching the registry's lock.
func (h *Hierarchy) bindMetrics(buildWall time.Duration, reused bool) {
	r := obs.Default()
	if r == nil {
		return
	}
	r.Counter("mg.builds").Inc()
	if h.geometric {
		r.Counter("mg.builds.geometric").Inc()
	}
	if reused {
		r.Counter("mg.rebuilds.recycled").Inc()
	}
	r.Histogram("mg.build.seconds", obs.ExpBuckets(1e-4, 4, 10)).Observe(buildWall.Seconds())
	r.Gauge("mg.levels").Set(float64(len(h.levels)))
	h.cycles = r.Counter("mg.cycles")
	h.levelWall = make([]*obs.Histogram, len(h.levels))
	for k, lv := range h.levels {
		h.levelWall[k] = r.Histogram(fmt.Sprintf("mg.cycle.level%d.seconds", k), obs.ExpBuckets(1e-7, 4, 12))
		// Stored entries and mean stencil width per level: the Galerkin
		// densification these gauges expose is what the deep-level
		// aggregation and prolongation filtering exist to contain (the
		// re-discretized geometric levels report their fixed structural
		// stencil counts instead).
		nnz := lv.nnz()
		r.Gauge(fmt.Sprintf("mg.level%d.nnz", k)).Set(float64(nnz))
		r.Gauge(fmt.Sprintf("mg.level%d.density", k)).Set(float64(nnz) / float64(lv.op.Rows()))
	}
}

// nnz reports the level operator's stored-entry count: the assembled CSR's
// when the level has one, the structural stencil count of a coefficient-
// backed geometric level otherwise.
func (lv *level) nnz() int {
	if lv.a != nil {
		return lv.a.NNZ()
	}
	if z, ok := lv.op.(interface{ NNZ() int }); ok {
		return z.NNZ()
	}
	return 0
}

// newLevelOp wraps an operator with its smoother and scratch space — the
// shared core of newLevel and the geometric builder's coefficient-backed
// coarse levels, which have no assembled CSR.
func newLevelOp(op sparse.Operator, opt Options, mem *arena) (*level, error) {
	n := op.Rows()
	lv := &level{
		op:     op,
		degree: opt.degree(),
		b:      mem.f64(n),
		x:      mem.f64(n),
		res:    mem.f64(n),
		e:      mem.f64(n),
		cd:     mem.f64(n),
		cres:   mem.f64(n),
		ct:     mem.f64(n),
	}
	if err := lv.newSmoother(opt.smootherRange(), mem); err != nil {
		return nil, err
	}
	return lv, nil
}

// newLevel wraps a matrix with its smoother and scratch space.
func newLevel(a *sparse.CSR, opt Options, mem *arena) (*level, error) {
	lv, err := newLevelOp(a, opt, mem)
	if err != nil {
		return nil, err
	}
	lv.a = a
	return lv, nil
}

// SetFineOperator redirects the finest level's matrix products (smoother
// matvecs and residuals) through op — typically the matrix-free stencil
// internal/fem extracts from the same assembled matrix, which makes the
// dominant per-cycle work matrix-free while the coarse levels stay on their
// Galerkin CSRs. The operator must evaluate bit-identically to the build
// matrix (the fem stencil's contract); nil or a size mismatch restores the
// assembled CSR. Call per solve: a hierarchy cached across solves keeps the
// last operator set.
func (h *Hierarchy) SetFineOperator(op sparse.Operator) {
	lv := h.levels[0]
	if op == nil || op.Rows() != lv.a.Rows() || op.Cols() != lv.a.Cols() {
		lv.op = lv.a
		return
	}
	lv.op = op
}

// Levels implements sparse.MGSolver.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Size implements sparse.MGSolver.
func (h *Hierarchy) Size() int { return h.levels[0].a.Rows() }

// Geometric reports whether the hierarchy was built in geometric mode —
// diagnostics for span attributes and tests.
func (h *Hierarchy) Geometric() bool { return h.geometric }

// MixedPrecision reports whether the hierarchy stores its preconditioner
// data as float32 (Options.Precision) — diagnostics for span attributes and
// tests.
func (h *Hierarchy) MixedPrecision() bool { return h.f32 }

// LevelSizes returns the unknown count per level, finest first —
// diagnostics for tests and the verbose CLI paths.
func (h *Hierarchy) LevelSizes() []int {
	out := make([]int, len(h.levels))
	for i, lv := range h.levels {
		out[i] = lv.op.Rows()
	}
	return out
}

// Cycle implements sparse.MGSolver: z ← V-cycle(0, r), one symmetric
// V(1,1) cycle with Chebyshev pre- and post-smoothing. The same polynomial
// runs before and after the coarse correction and the coarse solve is
// exact, so the cycle is a fixed symmetric positive definite operator.
func (h *Hierarchy) Cycle(z, r []float64, p *sparse.Pool) {
	h.cycles.Inc()
	h.vcycle(0, z, r, p)
}

func (h *Hierarchy) vcycle(k int, x, b []float64, p *sparse.Pool) {
	if h.levelWall != nil {
		// Inclusive per-level wall time: level k's bucket covers its smoothing,
		// transfers, and everything below it.
		start := time.Now()
		defer func() { h.levelWall[k].Observe(time.Since(start).Seconds()) }()
	}
	lv := h.levels[k]
	if k == len(h.levels)-1 {
		// Dense Cholesky backsolve into the level's solution vector;
		// sequential (the coarsest grid is a few hundred unknowns) and
		// therefore trivially worker-count independent.
		if err := h.coarse.SolveInto(x, b); err != nil {
			// Unreachable: the factor and b have matching sizes by
			// construction. Fall back to a Jacobi sweep rather than panic.
			for i := range x {
				x[i] = b[i] * lv.invDiag[i]
			}
		}
		return
	}
	next := h.levels[k+1]
	// Pre-smooth from the zero initial guess: x = q(B)·D⁻¹·b.
	lv.smooth(x, b, p, false)
	// res = b - A·x, fused per row (same accumulation order as the
	// unfused matvec-then-subtract).
	res := lv.res
	p.ResidualOp(lv.op, x, b, res)
	// Restrict: b_c = Pᵀ·res, parallel over coarse rows with the summation
	// order fixed by the transposed CSR layout.
	tr := lv.tr
	if tr.ptVal32 != nil {
		p.MulVecRawF32(tr.ptPtr, tr.ptCol, tr.ptVal32, res, next.b)
	} else {
		p.MulVecRaw(tr.ptPtr, tr.ptCol, tr.ptVal, res, next.b)
	}
	h.vcycle(k+1, next.x, next.b, p)
	if k >= h.gammaFrom && k+1 < len(h.levels)-1 {
		// Truncated W-cycle: revisit the coarse level gamma-1 more times,
		// each visit an additive correction of the residual the last one
		// left. With B the single-visit cycle, two visits apply 2B − BAB —
		// still symmetric, still positive definite for a convergent B — so
		// the preconditioner stays CG-safe. Skipped on the coarsest level,
		// whose direct solve is already exact.
		for g := 1; g < h.gamma; g++ {
			p.ResidualOp(next.op, next.x, next.b, next.b2)
			h.vcycle(k+1, next.x2, next.b2, p)
			p.VecAdd(next.x, next.x2)
		}
	}
	// Prolong and correct: x += P·e, parallel over fine rows.
	if tr.pVal32 != nil {
		p.MulVecAddRawF32(tr.pPtr, tr.pCol, tr.pVal32, next.x, x)
	} else {
		p.MulVecAddRaw(tr.pPtr, tr.pCol, tr.pVal, next.x, x)
	}
	// Post-smooth the correction: x += S'·(b - A·x) with S' the adjoint of
	// the pre-smoother (the same Chebyshev polynomial, or the line sweep in
	// reversed axis order), keeping the cycle symmetric.
	p.ResidualOp(lv.op, x, b, res)
	lv.smooth(lv.e, res, p, true)
	p.VecAdd(x, lv.e)
}
