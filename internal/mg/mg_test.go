package mg

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sparse"
)

// poisson2D assembles the 5-point Dirichlet Laplacian on an nx×ny grid —
// the canonical mesh-independence benchmark for a multigrid cycle.
func poisson2D(nx, ny int) (*sparse.CSR, []int) {
	n := nx * ny
	coo := sparse.NewCOO(n, n)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			i := iy*nx + ix
			coo.Add(i, i, 4)
			if ix > 0 {
				coo.Add(i, i-1, -1)
			}
			if ix < nx-1 {
				coo.Add(i, i+1, -1)
			}
			if iy > 0 {
				coo.Add(i, i-nx, -1)
			}
			if iy < ny-1 {
				coo.Add(i, i+nx, -1)
			}
		}
	}
	return coo.ToCSR(), []int{nx, ny}
}

// layered2D assembles an anisotropic diffusion operator whose strong
// coupling direction flips between the lower and upper half of the grid —
// the same heterogeneity pattern as a via stack's thin-layer/bulk mix, which
// defeats any global semi-coarsening axis choice. Face coefficients are
// harmonic means of the two cells' conductivities (standard finite-volume
// form), so the matrix is symmetric; the bottom row is held at a Dirichlet
// sink so it is also positive definite.
func layered2D(nx, ny int) (*sparse.CSR, []int) {
	n := nx * ny
	kxy := func(iy int) (float64, float64) {
		if iy >= ny/2 {
			return 1, 100
		}
		return 100, 1
	}
	harm := func(a, b float64) float64 { return 2 * a * b / (a + b) }
	coo := sparse.NewCOO(n, n)
	diag := make([]float64, n)
	addFace := func(i, j int, kf float64) {
		coo.Add(i, j, -kf)
		coo.Add(j, i, -kf)
		diag[i] += kf
		diag[j] += kf
	}
	for iy := 0; iy < ny; iy++ {
		kx, ky := kxy(iy)
		for ix := 0; ix < nx; ix++ {
			i := iy*nx + ix
			if ix < nx-1 {
				addFace(i, i+1, kx)
			}
			if iy < ny-1 {
				_, ky2 := kxy(iy + 1)
				addFace(i, i+nx, harm(ky, ky2))
			}
			if iy == 0 {
				diag[i] += 2 * ky // Dirichlet sink below the bottom row
			}
		}
	}
	for i, d := range diag {
		coo.Add(i, i, d)
	}
	return coo.ToCSR(), []int{nx, ny}
}

// fillRand fills v with a deterministic pseudo-random sequence in [-0.5, 0.5).
func fillRand(v []float64, seed uint64) {
	s := seed
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(s>>11)/float64(1<<53) - 0.5
	}
}

func TestBuildErrors(t *testing.T) {
	a, dims := poisson2D(16, 16)
	cases := []struct {
		name string
		a    *sparse.CSR
		dims []int
		want string
	}{
		{"no dims", a, nil, "no grid dimensions"},
		{"bad dim", a, []int{16, 0}, "invalid grid"},
		{"cell mismatch", a, []int{16, 8}, "cells"},
		{"too small", mustCSR(poisson2D(4, 4)), []int{4, 4}, "cannot coarsen"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Build(tc.a, tc.dims, Options{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Build err = %v, want substring %q", err, tc.want)
			}
		})
	}
	_ = dims

	// A zero diagonal breaks the Jacobi-scaled smoother.
	coo := sparse.NewCOO(2048, 2048)
	for i := 0; i < 2047; i++ {
		coo.Add(i, i, 1)
	}
	coo.Add(2047, 2046, 1)
	coo.Add(2046, 2047, 1)
	if _, err := Build(coo.ToCSR(), []int{2048}, Options{}); err == nil {
		t.Fatal("Build accepted a matrix with a non-positive diagonal")
	}
}

func mustCSR(a *sparse.CSR, _ []int) *sparse.CSR { return a }

func TestHierarchyShape(t *testing.T) {
	a, dims := poisson2D(64, 64)
	h, err := Build(a, dims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() != 64*64 {
		t.Fatalf("Size = %d, want %d", h.Size(), 64*64)
	}
	sizes := h.LevelSizes()
	if len(sizes) != h.Levels() || h.Levels() < 2 {
		t.Fatalf("Levels = %d, LevelSizes = %v", h.Levels(), sizes)
	}
	for k := 1; k < len(sizes); k++ {
		if sizes[k] >= sizes[k-1] {
			t.Fatalf("level sizes must strictly decrease: %v", sizes)
		}
	}
	if last := sizes[len(sizes)-1]; last > 400 {
		t.Fatalf("coarsest level has %d unknowns, want <= 400 (sizes %v)", last, sizes)
	}
}

func TestAggregationCoversAndIsDeterministic(t *testing.T) {
	for _, mk := range []func(int, int) (*sparse.CSR, []int){poisson2D, layered2D} {
		a, _ := mk(48, 48)
		ar := extractCSR(a, &arena{})
		agg, nc := aggregateStrength(ar, 1, &arena{})
		if nc <= 0 || nc >= a.Rows() {
			t.Fatalf("nc = %d of %d rows", nc, a.Rows())
		}
		seen := make([]int, nc)
		for i, c := range agg {
			if c < 0 || int(c) >= nc {
				t.Fatalf("cell %d assigned to aggregate %d of %d", i, c, nc)
			}
			seen[c]++
		}
		for c, cnt := range seen {
			if cnt < 1 || cnt > 2 {
				t.Fatalf("aggregate %d has %d cells, want 1 or 2 (pairwise matching)", c, cnt)
			}
		}
		agg2, nc2 := aggregateStrength(extractCSR(a, &arena{}), 1, &arena{})
		if nc2 != nc {
			t.Fatalf("second run: nc = %d, want %d", nc2, nc)
		}
		for i := range agg {
			if agg[i] != agg2[i] {
				t.Fatalf("aggregation not deterministic at cell %d: %d vs %d", i, agg[i], agg2[i])
			}
		}
	}
}

func TestAggregationFollowsStrongCoupling(t *testing.T) {
	// In the layered operator the strong axis flips at ny/2; pairwise
	// matching must pair along x below and along z above. Check a sample of
	// interior cells: the partner (the other cell in the aggregate) must be
	// a strong-direction neighbor.
	nx, ny := 32, 32
	a, _ := layered2D(nx, ny)
	agg, nc := aggregateStrength(extractCSR(a, &arena{}), 1, &arena{})
	partner := make([]int, nc)
	for i := range partner {
		partner[i] = -1
	}
	for i, c := range agg {
		if partner[c] == -1 {
			partner[c] = i
		} else {
			partner[c] = partner[c]*100000 + i // encode the pair
		}
	}
	checked := 0
	for iy := 2; iy < ny-2; iy++ {
		for ix := 2; ix < nx-2; ix++ {
			i := iy*nx + ix
			pair := partner[agg[i]]
			if pair < 100000 {
				continue // singleton
			}
			lo, hi := pair/100000, pair%100000
			j := lo
			if j == i {
				j = hi
			}
			d := j - i
			if d < 0 {
				d = -d
			}
			strongX := iy < ny/2
			if jy := j / nx; jy >= 2 && jy < ny-2 {
				if strongX && d != 1 {
					t.Fatalf("cell (%d,%d) in strong-x band paired with offset %d, want ±1", ix, iy, j-i)
				}
				if !strongX && d != nx {
					t.Fatalf("cell (%d,%d) in strong-z band paired with offset %d, want ±%d", ix, iy, j-i, nx)
				}
				checked++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d interior pairs checked", checked)
	}
}

func TestCycleIsSymmetricPositiveDefinite(t *testing.T) {
	a, dims := poisson2D(32, 32)
	h, err := Build(a, dims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := sparse.NewPool(1)
	defer p.Close()
	n := a.Rows()
	u := make([]float64, n)
	v := make([]float64, n)
	mu := make([]float64, n)
	mv := make([]float64, n)
	for trial := uint64(0); trial < 5; trial++ {
		fillRand(u, 1000+trial)
		fillRand(v, 2000+trial)
		h.Cycle(mu, u, p)
		h.Cycle(mv, v, p)
		uMv, vMu, uMu := dot(u, mv), dot(v, mu), dot(u, mu)
		if rel := math.Abs(uMv-vMu) / math.Max(math.Abs(uMv), 1e-300); rel > 1e-10 {
			t.Fatalf("trial %d: cycle not symmetric: u·Mv = %.17g, v·Mu = %.17g (rel %g)", trial, uMv, vMu, rel)
		}
		if uMu <= 0 {
			t.Fatalf("trial %d: u·Mu = %g, cycle is not positive definite", trial, uMu)
		}
	}
}

func TestVCycleStationaryIterationConverges(t *testing.T) {
	for name, mk := range map[string]func(int, int) (*sparse.CSR, []int){
		"poisson": poisson2D, "layered": layered2D,
	} {
		a, dims := mk(48, 48)
		h, err := Build(a, dims, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := sparse.NewPool(1)
		n := a.Rows()
		b := make([]float64, n)
		fillRand(b, 7)
		x := make([]float64, n)
		r := make([]float64, n)
		z := make([]float64, n)
		copy(r, b)
		r0 := norm2(r)
		for it := 0; it < 30; it++ {
			h.Cycle(z, r, p)
			for i := range x {
				x[i] += z[i]
			}
			a.MulVec(x, r)
			for i := range r {
				r[i] = b[i] - r[i]
			}
		}
		p.Close()
		if rel := norm2(r) / r0; rel > 1e-8 {
			t.Fatalf("%s: stationary V-cycle reduced the residual only to %g in 30 iterations", name, rel)
		}
	}
}

func TestCycleBitIdenticalAcrossWorkers(t *testing.T) {
	a, dims := poisson2D(64, 64)
	h, err := Build(a, dims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows()
	r := make([]float64, n)
	fillRand(r, 42)
	var ref []float64
	for _, w := range []int{1, 2, 4, 8} {
		p := sparse.NewPool(w)
		z := make([]float64, n)
		h.Cycle(z, r, p)
		p.Close()
		if ref == nil {
			ref = z
			continue
		}
		for i := range z {
			if z[i] != ref[i] {
				t.Fatalf("workers %d: z[%d] = %.17g != %.17g", w, i, z[i], ref[i])
			}
		}
	}
}

func TestCGIterationsMeshIndependent(t *testing.T) {
	// The point of the hierarchy: CG iteration counts must stay within a
	// constant band as the grid refines.
	for _, nx := range []int{32, 64, 128} {
		a, dims := poisson2D(nx, nx)
		h, err := Build(a, dims, Options{})
		if err != nil {
			t.Fatalf("%d: %v", nx, err)
		}
		b := make([]float64, a.Rows())
		fillRand(b, 9)
		_, st, err := sparse.SolveCG(a, b, sparse.Options{Precond: sparse.PrecondMG, MG: h, Tol: 1e-10})
		if err != nil {
			t.Fatalf("%d: %v", nx, err)
		}
		if st.Iterations > 30 {
			t.Fatalf("grid %d×%d: %d CG iterations, want <= 30", nx, nx, st.Iterations)
		}
		if st.Levels != h.Levels() {
			t.Fatalf("stats report %d levels, hierarchy has %d", st.Levels, h.Levels())
		}
	}
}

func TestHierarchySizeMismatchRejected(t *testing.T) {
	a, dims := poisson2D(32, 32)
	h, err := Build(a, dims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	small, _ := poisson2D(16, 16)
	b := make([]float64, small.Rows())
	b[0] = 1
	if _, _, err := sparse.SolveCG(small, b, sparse.Options{Precond: sparse.PrecondMG, MG: h}); err == nil {
		t.Fatal("SolveCG accepted a hierarchy built for a different matrix size")
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(v []float64) float64 { return math.Sqrt(dot(v, v)) }

// TestWCycleIsSymmetricAndConverges exercises the truncated W-cycle
// (Options.Gamma = 2, off by default): the extra coarse visits are additive
// residual corrections, so the cycle must remain a fixed symmetric positive
// definite operator (CG-safe) and converge at least as fast as the V-cycle
// as a stationary iteration.
func TestWCycleIsSymmetricAndConverges(t *testing.T) {
	a, dims := layered2D(48, 48)
	h, err := Build(a, dims, Options{Gamma: 2, GammaFromLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	p := sparse.NewPool(1)
	defer p.Close()
	n := a.Rows()
	u := make([]float64, n)
	v := make([]float64, n)
	mu := make([]float64, n)
	mv := make([]float64, n)
	for trial := uint64(0); trial < 5; trial++ {
		fillRand(u, 3000+trial)
		fillRand(v, 4000+trial)
		h.Cycle(mu, u, p)
		h.Cycle(mv, v, p)
		uMv, vMu, uMu := dot(u, mv), dot(v, mu), dot(u, mu)
		if rel := math.Abs(uMv-vMu) / math.Max(math.Abs(uMv), 1e-300); rel > 1e-10 {
			t.Fatalf("trial %d: W-cycle not symmetric: u·Mv = %.17g, v·Mu = %.17g (rel %g)", trial, uMv, vMu, rel)
		}
		if uMu <= 0 {
			t.Fatalf("trial %d: u·Mu = %g, W-cycle is not positive definite", trial, uMu)
		}
	}
	b := make([]float64, n)
	fillRand(b, 11)
	_, st, err := sparse.SolveCG(a, b, sparse.Options{Precond: sparse.PrecondMG, MG: h, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 30 {
		t.Fatalf("W-cycle CG took %d iterations, want <= 30", st.Iterations)
	}
}

// TestDeepAggregationShortensHierarchy exercises the opt-in deep-level
// aggregation: 2^DeepPairPasses-cell aggregates below DeepAggLevel must
// yield a strictly shallower hierarchy than pairs everywhere, and the
// resulting preconditioner must still converge.
func TestDeepAggregationShortensHierarchy(t *testing.T) {
	a, dims := poisson2D(96, 96)
	pairs, err := Build(a, dims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Build(a, dims, Options{DeepAggLevel: 1, DeepPairPasses: 3})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Levels() >= pairs.Levels() {
		t.Fatalf("deep aggregation gave %d levels, pairs %d; want shallower", deep.Levels(), pairs.Levels())
	}
	b := make([]float64, a.Rows())
	fillRand(b, 13)
	_, st, err := sparse.SolveCG(a, b, sparse.Options{Precond: sparse.PrecondMG, MG: deep, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 60 {
		t.Fatalf("deep-aggregation CG took %d iterations, want <= 60", st.Iterations)
	}
}
