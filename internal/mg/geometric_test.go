package mg

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sparse"
)

// poisson3D assembles the 7-point Dirichlet Laplacian on an nx×ny×nz grid —
// the Cartesian member of the geometric property-test grid zoo.
func poisson3D(nx, ny, nz int) (*sparse.CSR, []int) {
	n := nx * ny * nz
	coo := sparse.NewCOO(n, n)
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				i := (iz*ny+iy)*nx + ix
				coo.Add(i, i, 6)
				if ix > 0 {
					coo.Add(i, i-1, -1)
				}
				if ix < nx-1 {
					coo.Add(i, i+1, -1)
				}
				if iy > 0 {
					coo.Add(i, i-nx, -1)
				}
				if iy < ny-1 {
					coo.Add(i, i+nx, -1)
				}
				if iz > 0 {
					coo.Add(i, i-nx*ny, -1)
				}
				if iz < nz-1 {
					coo.Add(i, i+nx*ny, -1)
				}
			}
		}
	}
	return coo.ToCSR(), []int{nx, ny, nz}
}

func geomOpts(prec PrecisionKind) Options {
	return Options{Hierarchy: HierarchyGeometric, Precision: prec}
}

// The geometric hierarchy must coarsen 2× per axis with no assembled coarse
// CSRs: coefficient-backed stencil levels all the way down.
func TestGeometricHierarchyShape(t *testing.T) {
	a, dims := poisson2D(64, 64)
	h, err := Build(a, dims, geomOpts(PrecisionF64))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Geometric() {
		t.Fatal("Geometric() = false on a geometric build")
	}
	sizes := h.LevelSizes()
	want := []int{4096, 1024, 256}
	if len(sizes) != len(want) {
		t.Fatalf("level sizes %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("level sizes %v, want %v", sizes, want)
		}
	}
	for k, lv := range h.levels {
		if k == 0 {
			if lv.a == nil {
				t.Fatal("finest level lost its assembled CSR")
			}
			continue
		}
		if lv.a != nil {
			t.Fatalf("geometric level %d assembled a CSR", k)
		}
		if _, ok := lv.op.(*sparse.Stencil); !ok {
			t.Fatalf("geometric level %d operator is %T, want *sparse.Stencil", k, lv.op)
		}
	}
}

// A mixed-precision build must carry float32 coarse stencils, transfers and
// line-smoother factors on every level.
func TestGeometricF32HierarchyStorage(t *testing.T) {
	a, dims := poisson2D(64, 64)
	h, err := Build(a, dims, geomOpts(PrecisionF32))
	if err != nil {
		t.Fatal(err)
	}
	for k, lv := range h.levels {
		if len(lv.lines) == 0 {
			t.Fatalf("level %d: geometric build has no line-smoother factors", k)
		}
		for _, ax := range lv.lines {
			if ax.l32 == nil || ax.inv32 == nil || ax.l != nil || ax.invc != nil {
				t.Fatalf("level %d axis %d: f32 build kept float64 line factors", k, ax.axis)
			}
		}
		if k > 0 {
			if _, ok := lv.op.(*sparse.StencilF32); !ok {
				t.Fatalf("f32 level %d operator is %T, want *sparse.StencilF32", k, lv.op)
			}
		}
		if lv.tr != nil && (lv.tr.pVal32 == nil || lv.tr.ptVal32 == nil) {
			t.Fatalf("level %d: f32 build kept float64 transfer values", k)
		}
	}
}

func TestGeometricBuildRejections(t *testing.T) {
	// An entry off the stencil pattern must be rejected.
	a, dims := poisson2D(32, 32)
	coo := sparse.NewCOO(a.Rows(), a.Cols())
	a.Each(func(i, j int, v float64) { coo.Add(i, j, v) })
	coo.Add(0, 5, -0.25)
	coo.Add(5, 0, -0.25)
	if _, err := Build(coo.ToCSR(), dims, geomOpts(PrecisionF64)); err == nil ||
		!strings.Contains(err.Error(), "stencil neighbor") {
		t.Fatalf("off-stencil entry: err = %v, want stencil-neighbor rejection", err)
	}

	// A positive off-diagonal (not a conductance network) must be rejected.
	coo = sparse.NewCOO(a.Rows(), a.Cols())
	a.Each(func(i, j int, v float64) {
		if i != j && ((i == 0 && j == 1) || (i == 1 && j == 0)) {
			v = 0.5
		}
		coo.Add(i, j, v)
	})
	if _, err := Build(coo.ToCSR(), dims, geomOpts(PrecisionF64)); err == nil ||
		!strings.Contains(err.Error(), "conductance") {
		t.Fatalf("positive off-diagonal: err = %v, want conductance-network rejection", err)
	}

	// f32 storage is a geometric-only feature.
	if _, err := Build(a, dims, Options{Precision: PrecisionF32}); err == nil ||
		!strings.Contains(err.Error(), "geometric") {
		t.Fatalf("f32 galerkin: err = %v, want geometric-required rejection", err)
	}
}

func TestParseHierarchyAndPrecision(t *testing.T) {
	for s, want := range map[string]HierarchyKind{
		"": HierarchyGalerkin, "auto": HierarchyGalerkin, "galerkin": HierarchyGalerkin,
		"geometric": HierarchyGeometric, "geom": HierarchyGeometric,
	} {
		got, err := ParseHierarchy(s)
		if err != nil || got != want {
			t.Fatalf("ParseHierarchy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseHierarchy("algebraic"); err == nil {
		t.Fatal("ParseHierarchy accepted an unknown spelling")
	}
	for s, want := range map[string]PrecisionKind{
		"": PrecisionF64, "auto": PrecisionF64, "f64": PrecisionF64,
		"f32": PrecisionF32, "float32": PrecisionF32,
	} {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("ParsePrecision accepted an unknown spelling")
	}
}

// The geometric cycle — including the mixed-precision one — must stay a
// fixed symmetric positive definite operator, or CG quietly loses its
// convergence guarantee.
func TestGeometricCycleSymmetricPositiveDefinite(t *testing.T) {
	for _, prec := range []PrecisionKind{PrecisionF64, PrecisionF32} {
		a, dims := layered2D(48, 48)
		h, err := Build(a, dims, geomOpts(prec))
		if err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		p := sparse.NewPool(1)
		n := a.Rows()
		u := make([]float64, n)
		v := make([]float64, n)
		mu := make([]float64, n)
		mv := make([]float64, n)
		for trial := uint64(0); trial < 5; trial++ {
			fillRand(u, 1000+trial)
			fillRand(v, 2000+trial)
			h.Cycle(mu, u, p)
			h.Cycle(mv, v, p)
			uMv, vMu, uMu := dot(u, mv), dot(v, mu), dot(u, mu)
			if rel := math.Abs(uMv-vMu) / math.Max(math.Abs(uMv), 1e-300); rel > 1e-10 {
				t.Fatalf("%v trial %d: cycle not symmetric: u·Mv = %.17g, v·Mu = %.17g (rel %g)", prec, trial, uMv, vMu, rel)
			}
			if uMu <= 0 {
				t.Fatalf("%v trial %d: u·Mu = %g, cycle is not positive definite", prec, trial, uMu)
			}
		}
		p.Close()
	}
}

// TestGeometricHierarchyProperty is the geometric-mode acceptance property
// over the grid zoo (2-D Poisson, flipping-anisotropy layered, 3-D
// Cartesian, high-contrast layered) × worker counts 1/2/4/8:
//
//   - cycle output is bit-identical for every worker count (per precision);
//   - preconditioned CG takes at most 3 iterations more than the Galerkin
//     hierarchy on the same system (on the physical fem stacks geometric
//     needs FEWER iterations than Galerkin; the +3 headroom covers the
//     synthetic 1000:1-contrast worst case, where W-cycle line smoothing
//     plateaus at +3 for any damping factor);
//   - the f32-preconditioned solution agrees with the f64 one within solver
//     tolerance (the preconditioner shapes the Krylov space, it does not
//     change what CG converges to).
func TestGeometricHierarchyProperty(t *testing.T) {
	grids := []struct {
		name string
		mk   func() (*sparse.CSR, []int)
	}{
		{"poisson2d", func() (*sparse.CSR, []int) { return poisson2D(64, 64) }},
		{"layered2d", func() (*sparse.CSR, []int) { return layered2D(64, 64) }},
		{"cart3d", func() (*sparse.CSR, []int) { return poisson3D(16, 16, 16) }},
		{"contrast1e3", func() (*sparse.CSR, []int) { return layeredContrast(64, 64, 1000) }},
	}
	workers := []int{1, 2, 4, 8}
	for _, g := range grids {
		t.Run(g.name, func(t *testing.T) {
			a, dims := g.mk()
			n := a.Rows()
			b := make([]float64, n)
			fillRand(b, 77)

			gal, err := Build(a, dims, Options{})
			if err != nil {
				t.Fatalf("galerkin build: %v", err)
			}
			_, galSt, err := sparse.SolveCG(a, b, sparse.Options{Precond: sparse.PrecondMG, MG: gal, Tol: 1e-10})
			if err != nil {
				t.Fatalf("galerkin solve: %v", err)
			}

			var x64 []float64
			for _, prec := range []PrecisionKind{PrecisionF64, PrecisionF32} {
				h, err := Build(a, dims, geomOpts(prec))
				if err != nil {
					t.Fatalf("geometric %v build: %v", prec, err)
				}
				// Bit-identical cycles across worker counts.
				r := make([]float64, n)
				fillRand(r, 5)
				var ref []float64
				for _, w := range workers {
					p := sparse.NewPool(w)
					z := make([]float64, n)
					h.Cycle(z, r, p)
					p.Close()
					if ref == nil {
						ref = z
						continue
					}
					sameBits(t, g.name+" cycle workers", z, ref)
				}
				x, st, err := sparse.SolveCG(a, b, sparse.Options{Precond: sparse.PrecondMG, MG: h, Tol: 1e-10})
				if err != nil {
					t.Fatalf("geometric %v solve: %v", prec, err)
				}
				if st.Iterations > galSt.Iterations+3 {
					t.Fatalf("geometric %v: %d CG iterations, galerkin took %d (allowed +3)",
						prec, st.Iterations, galSt.Iterations)
				}
				if prec == PrecisionF64 {
					x64 = x
					continue
				}
				// f32 vs f64 preconditioning: same converged answer within
				// solver tolerance.
				var diff, ref64 float64
				for i := range x {
					diff = math.Max(diff, math.Abs(x[i]-x64[i]))
					ref64 = math.Max(ref64, math.Abs(x64[i]))
				}
				if diff > 1e-6*math.Max(ref64, 1) {
					t.Fatalf("f32-preconditioned solution differs from f64 by %g (ref %g)", diff, ref64)
				}
			}
		})
	}
}

// A geometric rebuild through a donated arena must be bit-identical to a
// fresh build — the same re-discretization contract the Galerkin path keeps.
func TestGeometricRebuildMatchesFreshBuild(t *testing.T) {
	for _, prec := range []PrecisionKind{PrecisionF64, PrecisionF32} {
		nx, ny := 48, 48
		n := nx * ny
		a1, dims := layeredContrast(nx, ny, 100)
		a2, _ := layeredContrast(nx, ny, 37)

		opts := geomOpts(prec)
		fresh2, err := Build(a2, dims, opts)
		if err != nil {
			t.Fatalf("%v fresh Build(a2): %v", prec, err)
		}
		want2 := cycleBits(t, fresh2, n, 7)

		donor, err := Build(a1, dims, opts)
		if err != nil {
			t.Fatalf("%v Build(a1): %v", prec, err)
		}
		re := opts
		re.Prev = donor
		re2, err := Build(a2, dims, re)
		if err != nil {
			t.Fatalf("%v recycled Build(a2): %v", prec, err)
		}
		sameBits(t, prec.String()+" rebuild cycle", cycleBits(t, re2, n, 7), want2)
	}
}

// The stationary iteration x += M(b - Ax) with the geometric W-cycle must
// still contract fast enough to be a useful preconditioner on its own.
func TestGeometricStationaryConverges(t *testing.T) {
	for name, mk := range map[string]func(int, int) (*sparse.CSR, []int){
		"poisson": poisson2D, "layered": layered2D,
	} {
		a, dims := mk(48, 48)
		h, err := Build(a, dims, geomOpts(PrecisionF64))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := sparse.NewPool(1)
		n := a.Rows()
		b := make([]float64, n)
		fillRand(b, 7)
		x := make([]float64, n)
		r := make([]float64, n)
		z := make([]float64, n)
		copy(r, b)
		r0 := norm2(r)
		for it := 0; it < 30; it++ {
			h.Cycle(z, r, p)
			for i := range x {
				x[i] += z[i]
			}
			a.MulVec(x, r)
			for i := range r {
				r[i] = b[i] - r[i]
			}
		}
		p.Close()
		if rel := norm2(r) / r0; rel > 1e-6 {
			t.Fatalf("%s: stationary geometric cycle reduced the residual only to %g in 30 iterations", name, rel)
		}
	}
}
