package mg

// arena recycles the allocation graph of a hierarchy build. Profiling the
// refined reference solve puts ~70% of its wall time and nearly all of its
// 57 MB/op inside Build — dominated by the append-grown Galerkin and
// prolongation arrays — yet every sweep point rebuilds from nothing. A
// hierarchy built with Options.Prev set steals the previous build's backing
// arrays through this arena instead: reset moves everything to a free list,
// and the build's allocation sites grab from it.
//
// Two grab flavors with different contracts:
//
//   - f64/i32/ints/bools return a zeroed length-n slice (best fit from the
//     free list, fresh allocation otherwise) and record it as used
//     immediately. Counting arrays and scatter targets use these.
//   - f64cap/i32cap return an EMPTY slice with at least the hinted capacity
//     for append-style assembly, and do NOT record it: the caller must hand
//     the final (possibly regrown) slice to adoptF64/adoptI32 once assembly
//     finishes, so the next generation reuses the grown array rather than
//     the stale original.
//
// The arena only ever recycles memory; it never changes what values are
// computed or in which order, so a rebuild through a recycled arena is
// bit-identical to a fresh build.
type arena struct {
	freeF64, usedF64   [][]float64
	freeF32, usedF32   [][]float32
	freeI32, usedI32   [][]int32
	freeInt, usedInt   [][]int
	freeBool, usedBool [][]bool
}

// reset returns every used array to the free lists, starting a new
// generation. The arrays of the hierarchy that owned them must no longer be
// in use.
func (ar *arena) reset() {
	ar.freeF64 = append(ar.freeF64, ar.usedF64...)
	ar.usedF64 = ar.usedF64[:0]
	ar.freeF32 = append(ar.freeF32, ar.usedF32...)
	ar.usedF32 = ar.usedF32[:0]
	ar.freeI32 = append(ar.freeI32, ar.usedI32...)
	ar.usedI32 = ar.usedI32[:0]
	ar.freeInt = append(ar.freeInt, ar.usedInt...)
	ar.usedInt = ar.usedInt[:0]
	ar.freeBool = append(ar.freeBool, ar.usedBool...)
	ar.usedBool = ar.usedBool[:0]
}

// bestFit removes and returns the index of the smallest free entry with
// capacity ≥ n, or -1. Generic over the four slice kinds via the caps
// closure-free pattern below (hand-rolled: this package predates generics
// use elsewhere in the repo and the four copies stay trivially readable).
func bestFitF64(free [][]float64, n int) int {
	best := -1
	for i, s := range free {
		if cap(s) >= n && (best < 0 || cap(s) < cap(free[best])) {
			best = i
		}
	}
	return best
}

func bestFitF32(free [][]float32, n int) int {
	best := -1
	for i, s := range free {
		if cap(s) >= n && (best < 0 || cap(s) < cap(free[best])) {
			best = i
		}
	}
	return best
}

func bestFitI32(free [][]int32, n int) int {
	best := -1
	for i, s := range free {
		if cap(s) >= n && (best < 0 || cap(s) < cap(free[best])) {
			best = i
		}
	}
	return best
}

func bestFitInt(free [][]int, n int) int {
	best := -1
	for i, s := range free {
		if cap(s) >= n && (best < 0 || cap(s) < cap(free[best])) {
			best = i
		}
	}
	return best
}

func bestFitBool(free [][]bool, n int) int {
	best := -1
	for i, s := range free {
		if cap(s) >= n && (best < 0 || cap(s) < cap(free[best])) {
			best = i
		}
	}
	return best
}

// largest returns the index of the largest free entry, or -1. Append-style
// grabs fall back to it when nothing meets the hint: growing the biggest
// recycled array wastes the least.
func largestF64(free [][]float64) int {
	best := -1
	for i, s := range free {
		if best < 0 || cap(s) > cap(free[best]) {
			best = i
		}
	}
	return best
}

func largestI32(free [][]int32) int {
	best := -1
	for i, s := range free {
		if best < 0 || cap(s) > cap(free[best]) {
			best = i
		}
	}
	return best
}

func (ar *arena) f64(n int) []float64 {
	if i := bestFitF64(ar.freeF64, n); i >= 0 {
		s := ar.takeF64(i)[:n]
		clear(s)
		ar.usedF64 = append(ar.usedF64, s)
		return s
	}
	s := make([]float64, n)
	ar.usedF64 = append(ar.usedF64, s)
	return s
}

func (ar *arena) f32(n int) []float32 {
	if i := bestFitF32(ar.freeF32, n); i >= 0 {
		s := ar.takeF32(i)[:n]
		clear(s)
		ar.usedF32 = append(ar.usedF32, s)
		return s
	}
	s := make([]float32, n)
	ar.usedF32 = append(ar.usedF32, s)
	return s
}

func (ar *arena) i32(n int) []int32 {
	if i := bestFitI32(ar.freeI32, n); i >= 0 {
		s := ar.takeI32(i)[:n]
		clear(s)
		ar.usedI32 = append(ar.usedI32, s)
		return s
	}
	s := make([]int32, n)
	ar.usedI32 = append(ar.usedI32, s)
	return s
}

func (ar *arena) ints(n int) []int {
	if i := bestFitInt(ar.freeInt, n); i >= 0 {
		s := ar.freeInt[i][:n]
		ar.dropInt(i)
		clear(s)
		ar.usedInt = append(ar.usedInt, s)
		return s
	}
	s := make([]int, n)
	ar.usedInt = append(ar.usedInt, s)
	return s
}

func (ar *arena) bools(n int) []bool {
	if i := bestFitBool(ar.freeBool, n); i >= 0 {
		s := ar.freeBool[i][:n]
		ar.dropBool(i)
		clear(s)
		ar.usedBool = append(ar.usedBool, s)
		return s
	}
	s := make([]bool, n)
	ar.usedBool = append(ar.usedBool, s)
	return s
}

// f64cap returns an empty slice with capacity ≥ hint when the free list can
// supply one (falling back to the largest available), for append-style
// assembly. The final slice must be passed to adoptF64.
func (ar *arena) f64cap(hint int) []float64 {
	i := bestFitF64(ar.freeF64, hint)
	if i < 0 {
		i = largestF64(ar.freeF64)
	}
	if i >= 0 {
		return ar.takeF64(i)[:0]
	}
	return make([]float64, 0, hint)
}

func (ar *arena) i32cap(hint int) []int32 {
	i := bestFitI32(ar.freeI32, hint)
	if i < 0 {
		i = largestI32(ar.freeI32)
	}
	if i >= 0 {
		return ar.takeI32(i)[:0]
	}
	return make([]int32, 0, hint)
}

// adoptF64 records the final state of an append-assembled slice so the next
// generation reuses its (possibly regrown) backing array.
func (ar *arena) adoptF64(s []float64) { ar.usedF64 = append(ar.usedF64, s) }
func (ar *arena) adoptI32(s []int32)   { ar.usedI32 = append(ar.usedI32, s) }
func (ar *arena) adoptInt(s []int)     { ar.usedInt = append(ar.usedInt, s) }

func (ar *arena) takeF64(i int) []float64 {
	s := ar.freeF64[i]
	last := len(ar.freeF64) - 1
	ar.freeF64[i] = ar.freeF64[last]
	ar.freeF64[last] = nil
	ar.freeF64 = ar.freeF64[:last]
	return s[:cap(s)]
}

func (ar *arena) takeF32(i int) []float32 {
	s := ar.freeF32[i]
	last := len(ar.freeF32) - 1
	ar.freeF32[i] = ar.freeF32[last]
	ar.freeF32[last] = nil
	ar.freeF32 = ar.freeF32[:last]
	return s[:cap(s)]
}

func (ar *arena) takeI32(i int) []int32 {
	s := ar.freeI32[i]
	last := len(ar.freeI32) - 1
	ar.freeI32[i] = ar.freeI32[last]
	ar.freeI32[last] = nil
	ar.freeI32 = ar.freeI32[:last]
	return s[:cap(s)]
}

func (ar *arena) dropInt(i int) {
	last := len(ar.freeInt) - 1
	ar.freeInt[i] = ar.freeInt[last]
	ar.freeInt[last] = nil
	ar.freeInt = ar.freeInt[:last]
}

func (ar *arena) dropBool(i int) {
	last := len(ar.freeBool) - 1
	ar.freeBool[i] = ar.freeBool[last]
	ar.freeBool[last] = nil
	ar.freeBool = ar.freeBool[:last]
}
