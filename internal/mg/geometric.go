package mg

// Geometric hierarchy construction (Options.Hierarchy = HierarchyGeometric).
//
// The smoothed-aggregation path builds every coarse operator as a Galerkin
// product Pᵀ·A·P — two sparse matrix-matrix products per level whose
// append-grown CSRs dominate fresh-build wall time and memory. On the
// structured finite-volume grids behind the reference solver none of that
// machinery is needed: the matrix IS a 7-point conductance network with a
// nonnegative grounding (the Dirichlet boundary terms), and a coarse grid is
// just the same network with 2×-per-axis merged cells. Each coarse level is
// therefore re-discretized directly:
//
//   - Cells merge in 2×2×2 boxes (an odd extent leaves a final unpaired
//     cell). The coarse coupling across a coarse face sums, over the fine
//     cells of the face, the series collapse of the fine conductance chain
//     from box center to box center:
//
//       g_chain = 1 / (0.5/g_in(I) + 1/g_cross + 0.5/g_in(J))
//
//     where g_cross is the fine face conductance across the coarse face and
//     g_in the fine conductance interior to each box along the same axis
//     (the half terms vanish for unpaired single-cell boxes). On a uniform
//     1-D grid this reduces to k·A/(2h) — exactly the conductance of a grid
//     with doubled spacing, which is what plain aggregation (merged nodes,
//     g_c = g_cross) gets wrong by 2×.
//   - The grounding σ_i = diag_i − Σ g (clamped at zero against floating-
//     point cancellation on interior rows) sums over each box.
//   - The coarse diagonal rebuilds as Σ adjacent g_c + σ_c, so every level
//     stays a conductance network with nonnegative grounding — symmetric
//     positive (semi-)definite by construction, positive definite whenever
//     the fine system was grounded.
//
// Each level stores four coefficient arrays (diagonal + one per axis) behind
// a coefficient-backed sparse.Stencil — no coarse CSR exists at all. The
// prolongation is the box injection smoothed by one damped-Jacobi pass,
// P = (I − ω·D⁻¹A)·P_box, assembled directly from the stencil coefficients
// in a single O(n) pass (see geomTransfer) and stored as raw CSR triples for
// the pool's deterministic transfer kernels. Because full 2×-per-axis
// coarsening preserves anisotropy ratios level after level, the levels
// smooth with the alternating-direction line smoother (linesmooth.go)
// instead of point Chebyshev, and cycles default to a truncated W-cycle
// (Options.Gamma). The whole build is a handful of O(n) passes.

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// geomGrid is one level's re-discretized stencil data during a geometric
// build: per-axis extents (1 for absent axes), the stencil coefficient
// arrays, and the grounding the next coarsening needs.
type geomGrid struct {
	nd [3]int
	n  int
	// diag and off hold the matrix coefficients (off[d][i] = A[i, i+s_d]
	// ≤ 0, nil for axes of extent 1) — the arrays a coefficient-backed
	// sparse.Stencil wraps directly.
	diag []float64
	off  [3][]float64
	// sigma is the nonnegative grounding diag − Σ g per cell.
	sigma []float64
}

func (g *geomGrid) strides() [3]int { return [3]int{1, g.nd[0], g.nd[0] * g.nd[1]} }

// coord returns cell i's grid coordinate along axis d.
func (g *geomGrid) coord(i, d int) int {
	switch d {
	case 0:
		return i % g.nd[0]
	case 1:
		return i / g.nd[0] % g.nd[1]
	default:
		return i / (g.nd[0] * g.nd[1])
	}
}

// geomFromCSR extracts the fine level's stencil coefficients and grounding
// from the assembled matrix, validating that it is a structured-grid
// conductance network: every entry the diagonal or an axis neighbor, every
// symmetric pair bitwise equal, every off-diagonal nonpositive.
func geomFromCSR(a *sparse.CSR, dims []int, mem *arena) (*geomGrid, error) {
	n := a.Rows()
	g := &geomGrid{nd: [3]int{1, 1, 1}, n: n}
	if len(dims) > 3 {
		return nil, fmt.Errorf("mg: geometric hierarchy supports 1-3 grid axes, got %d", len(dims))
	}
	for i, d := range dims {
		g.nd[i] = d
	}
	g.diag = mem.f64(n)
	g.sigma = mem.f64(n)
	for d := 0; d < 3; d++ {
		if g.nd[d] > 1 {
			g.off[d] = mem.f64(n)
		}
	}
	s := g.strides()
	var bad error
	a.Each(func(i, j int, v float64) {
		if bad != nil {
			return
		}
		switch diff := j - i; {
		case diff == 0:
			g.diag[i] = v
		case diff == s[2] && g.nd[2] > 1 && g.coord(i, 2)+1 < g.nd[2]:
			g.off[2][i] = v
		case diff == s[1] && g.nd[1] > 1 && g.coord(i, 1)+1 < g.nd[1]:
			g.off[1][i] = v
		case diff == s[0] && g.nd[0] > 1 && g.coord(i, 0)+1 < g.nd[0]:
			g.off[0][i] = v
		case diff == -s[2] && g.nd[2] > 1 && g.coord(i, 2) > 0:
			if g.off[2][j] != v {
				bad = fmt.Errorf("mg: coupling (%d, axis 2) is not symmetric: %g vs %g", j, v, g.off[2][j])
			}
		case diff == -s[1] && g.nd[1] > 1 && g.coord(i, 1) > 0:
			if g.off[1][j] != v {
				bad = fmt.Errorf("mg: coupling (%d, axis 1) is not symmetric: %g vs %g", j, v, g.off[1][j])
			}
		case diff == -s[0] && g.nd[0] > 1 && g.coord(i, 0) > 0:
			if g.off[0][j] != v {
				bad = fmt.Errorf("mg: coupling (%d, axis 0) is not symmetric: %g vs %g", j, v, g.off[0][j])
			}
		default:
			bad = fmt.Errorf("mg: entry (%d,%d) is not a grid-%v stencil neighbor; geometric hierarchy needs a structured stencil matrix", i, j, dims)
		}
		if bad == nil && i != j && v > 0 {
			bad = fmt.Errorf("mg: positive off-diagonal %g at (%d,%d); geometric hierarchy needs a conductance network", v, i, j)
		}
	})
	if bad != nil {
		return nil, bad
	}
	g.fillSigma()
	return g, nil
}

// fillSigma computes the grounding σ_i = diag_i + Σ off (off ≤ 0), clamped
// at zero: interior rows cancel exactly in real arithmetic but not in
// floating point, and a negative grounding would break the SPD-by-
// construction argument for the coarse levels.
func (g *geomGrid) fillSigma() {
	s := g.strides()
	ix, iy, iz := 0, 0, 0
	for i := 0; i < g.n; i++ {
		sum := g.diag[i]
		if iz > 0 {
			sum += g.off[2][i-s[2]]
		}
		if iy > 0 {
			sum += g.off[1][i-s[1]]
		}
		if ix > 0 {
			sum += g.off[0][i-1]
		}
		if ix+1 < g.nd[0] {
			sum += g.off[0][i]
		}
		if iy+1 < g.nd[1] {
			sum += g.off[1][i]
		}
		if iz+1 < g.nd[2] {
			sum += g.off[2][i]
		}
		if sum < 0 {
			sum = 0
		}
		g.sigma[i] = sum
		if ix++; ix == g.nd[0] {
			ix = 0
			if iy++; iy == g.nd[1] {
				iy = 0
				iz++
			}
		}
	}
}

// parent returns the coarse-cell index of fine cell i under 2× box
// coarsening (coarse coordinate = fine coordinate / 2 on every axis; axes of
// extent 1 stay at coordinate 0 either way).
func (g *geomGrid) parent(i int, cs [3]int) int {
	fx := i % g.nd[0]
	rem := i / g.nd[0]
	fy := rem % g.nd[1]
	fz := rem / g.nd[1]
	return fz/2*cs[2] + fy/2*cs[1] + fx/2
}

// coarsenGeom re-discretizes the next-coarser grid: 2× box merging per axis,
// series/parallel-collapsed face conductances, summed grounding, rebuilt
// diagonal. All passes are sequential over ascending cell indices, so the
// result is deterministic (and a recycled rebuild bit-identical).
func coarsenGeom(f *geomGrid, mem *arena) *geomGrid {
	c := &geomGrid{nd: [3]int{1, 1, 1}}
	for d := 0; d < 3; d++ {
		if f.nd[d] > 1 {
			c.nd[d] = (f.nd[d] + 1) / 2
		}
	}
	c.n = c.nd[0] * c.nd[1] * c.nd[2]
	c.diag = mem.f64(c.n)
	c.sigma = mem.f64(c.n)
	for d := 0; d < 3; d++ {
		if c.nd[d] > 1 {
			c.off[d] = mem.f64(c.n)
		}
	}
	fs := f.strides()
	cs := c.strides()
	// Grounding sums over each box, children in ascending fine order.
	for i := 0; i < f.n; i++ {
		c.sigma[f.parent(i, cs)] += f.sigma[i]
	}
	// Face conductances: a coarse face along axis d sits between fine
	// coordinates 2I+1 and 2I+2; walk the fine cells on its lower side.
	for d := 0; d < 3; d++ {
		if c.off[d] == nil {
			continue
		}
		off := f.off[d]
		for i := 0; i < f.n; i++ {
			fd := f.coord(i, d)
			if fd%2 != 1 || fd+1 >= f.nd[d] {
				continue
			}
			gc := -off[i] // across the coarse face
			if !(gc > 0) {
				continue
			}
			gi := -off[i-fs[d]] // interior to the lower box (fd is odd, so its pair exists)
			if !(gi > 0) {
				continue
			}
			r := 1/gc + 0.5/gi
			if fd+2 < f.nd[d] { // upper box has a second cell
				gj := -off[i+fs[d]]
				if !(gj > 0) {
					continue
				}
				r += 0.5 / gj
			}
			c.off[d][f.parent(i, cs)] -= 1 / r
		}
	}
	// Diagonal: Σ adjacent conductances + grounding, in the stencil's
	// canonical −z,−y,−x,+x,+y,+z neighbor order.
	ix, iy, iz := 0, 0, 0
	for i := 0; i < c.n; i++ {
		sum := c.sigma[i]
		if iz > 0 {
			sum -= c.off[2][i-cs[2]]
		}
		if iy > 0 {
			sum -= c.off[1][i-cs[1]]
		}
		if ix > 0 {
			sum -= c.off[0][i-1]
		}
		if ix+1 < c.nd[0] {
			sum -= c.off[0][i]
		}
		if iy+1 < c.nd[1] {
			sum -= c.off[1][i]
		}
		if iz+1 < c.nd[2] {
			sum -= c.off[2][i]
		}
		c.diag[i] = sum
		if ix++; ix == c.nd[0] {
			ix = 0
			if iy++; iy == c.nd[1] {
				iy = 0
				iz++
			}
		}
	}
	return c
}

// operator wraps the grid's coefficient arrays as the level's matrix-free
// stencil — float64 directly, or a float32 copy for the mixed-precision
// cycle (the float64 arrays stay live either way: the next coarsening and
// the bottom factorization read them).
func (g *geomGrid) operator(f32 bool, mem *arena) (sparse.Operator, error) {
	dims := []int{g.nd[0], g.nd[1], g.nd[2]}
	if !f32 {
		return sparse.NewStencilCoeffs(dims, g.diag, g.off)
	}
	diag := mem.f32(g.n)
	for i, v := range g.diag {
		diag[i] = float32(v)
	}
	var off [3][]float32
	for d := 0; d < 3; d++ {
		if g.off[d] == nil {
			continue
		}
		off[d] = mem.f32(g.n)
		for i, v := range g.off[d] {
			off[d][i] = float32(v)
		}
	}
	return sparse.NewStencilF32Coeffs(dims, diag, off)
}

// geomLmax is the Gershgorin bound on the Jacobi-scaled spectrum of a
// geometric grid's operator, computed straight off the coefficient arrays —
// the prolongation-smoothing scale (the stencil row sum is diag + Σ|off|,
// and invD·diag = 1).
func geomLmax(g *geomGrid) float64 {
	lmax := 1.0
	ix, iy, iz := 0, 0, 0
	for i := 0; i < g.n; i++ {
		var off float64
		if iz > 0 {
			off -= g.off[2][i-g.nd[0]*g.nd[1]]
		}
		if iy > 0 {
			off -= g.off[1][i-g.nd[0]]
		}
		if ix > 0 {
			off -= g.off[0][i-1]
		}
		if ix+1 < g.nd[0] {
			off -= g.off[0][i]
		}
		if iy+1 < g.nd[1] {
			off -= g.off[1][i]
		}
		if iz+1 < g.nd[2] {
			off -= g.off[2][i]
		}
		if b := 1 + off/g.diag[i]; b > lmax {
			lmax = b
		}
		if ix++; ix == g.nd[0] {
			ix = 0
			if iy++; iy == g.nd[1] {
				iy = 0
				iz++
			}
		}
	}
	return lmax
}

// geomTransfer builds the transfer pair between a fine and its coarse grid
// as raw CSR triples: the tentative prolongation injects each fine cell's
// parent value, and one damped-Jacobi pass smooths it, P = (I − ω·D⁻¹A)·P_box
// — the same approximation-property fix the smoothed-aggregation path applies,
// but assembled directly from the stencil coefficients in one O(n) pass (no
// sparse product). Each fine row holds its own parent plus at most one
// neighboring parent per axis (the out-of-box neighbor), emitted in canonical
// −z,−y,−x,center,+x,+y,+z column order, so the arrays are deterministic and
// the counting-sort transpose lands sorted. Restriction is Pᵀ.
func geomTransfer(f, c *geomGrid, f32 bool, mem *arena) *transfer {
	n, nc := f.n, c.n
	cs := c.strides()
	fs := f.strides()
	omega := saOmega / geomLmax(f)
	p := csrArrays{ptr: mem.i32(n + 1), col: mem.i32cap(4 * n), val: mem.f64cap(4 * n)}
	for i := 0; i < n; i++ {
		pc := f.parent(i, cs)
		s := omega / f.diag[i]
		// center accumulates the damped diagonal plus every in-box coupling;
		// lo/up[d] the couplings to the out-of-box parents pc ∓ cs[d].
		center := 1 - omega
		var lo, up [3]int32
		var wlo, wup [3]float64
		for d := 2; d >= 0; d-- {
			if f.nd[d] <= 1 {
				continue
			}
			fd := f.coord(i, d)
			if fd > 0 {
				w := -s * f.off[d][i-fs[d]]
				if fd%2 == 0 {
					lo[d], wlo[d] = int32(pc-cs[d]), w
				} else {
					center += w
				}
			}
			if fd+1 < f.nd[d] {
				w := -s * f.off[d][i]
				if fd%2 == 1 {
					up[d], wup[d] = int32(pc+cs[d]), w
				} else {
					center += w
				}
			}
		}
		for d := 2; d >= 0; d-- {
			if wlo[d] != 0 {
				p.col = append(p.col, lo[d])
				p.val = append(p.val, wlo[d])
			}
		}
		p.col = append(p.col, int32(pc))
		p.val = append(p.val, center)
		for d := 0; d < 3; d++ {
			if wup[d] != 0 {
				p.col = append(p.col, up[d])
				p.val = append(p.val, wup[d])
			}
		}
		p.ptr[i+1] = int32(len(p.col))
	}
	mem.adoptI32(p.col)
	mem.adoptF64(p.val)
	pt := transpose(p, nc, mem)
	tr := &transfer{
		pPtr: p.ptr, pCol: p.col, pVal: p.val,
		ptPtr: pt.ptr, ptCol: pt.col, ptVal: pt.val,
	}
	if f32 {
		tr.pVal32 = f32From(tr.pVal, mem)
		tr.ptVal32 = f32From(tr.ptVal, mem)
		tr.pVal, tr.ptVal = nil, nil
	}
	return tr
}

func f32From(v []float64, mem *arena) []float32 {
	out := mem.f32(len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// buildGeometric assembles the hierarchy's levels by repeated
// re-discretization and factors the coarsest grid densely, mirroring the
// Galerkin builder's stopping rules.
func (h *Hierarchy) buildGeometric(a *sparse.CSR, dims []int, opt Options, mem *arena) error {
	n := a.Rows()
	g, err := geomFromCSR(a, dims, mem)
	if err != nil {
		return err
	}
	f32 := opt.Precision == PrecisionF32
	lv, err := newLevel(a, opt, mem)
	if err != nil {
		return err
	}
	// Every geometric level smooths by alternating-direction line relaxation
	// (see linesmooth.go); the finest level's factors come from the same
	// extracted coefficients the coarsening consumes.
	if lv.lines, err = factorLines(g, f32, mem); err != nil {
		return err
	}
	h.levels = append(h.levels, lv)
	for g.n > opt.coarsestSize() && len(h.levels) < opt.maxLevels() {
		c := coarsenGeom(g, mem)
		if c.n >= g.n {
			break
		}
		h.levels[len(h.levels)-1].tr = geomTransfer(g, c, f32, mem)
		op, err := c.operator(f32, mem)
		if err != nil {
			return err
		}
		clv, err := newLevelOp(op, opt, mem)
		if err != nil {
			return err
		}
		if clv.lines, err = factorLines(c, f32, mem); err != nil {
			return err
		}
		if h.gamma > 1 {
			// W-cycle recursion target: dedicated correction scratch (never
			// the finest level, whose vectors belong to the caller).
			clv.b2 = mem.f64(c.n)
			clv.x2 = mem.f64(c.n)
		}
		h.levels = append(h.levels, clv)
		g = c
	}
	if len(h.levels) < 2 {
		return fmt.Errorf("mg: %d unknowns cannot coarsen (already at or below the coarse-solve size)", n)
	}
	// Direct coarse solve from the bottom grid's float64 coefficients (the
	// mixed-precision cycle still backsolves in float64 — the factorization
	// is where rounding would actually compound).
	nb := g.n
	chol, err := linalg.FactorizeCholeskyInto(denseFromGeom(g, mem),
		linalg.NewMatrixWithData(nb, nb, mem.f64(nb*nb)))
	if err != nil {
		return fmt.Errorf("mg: coarse-grid factorization: %w", err)
	}
	h.coarse = chol
	return nil
}

// denseFromGeom expands the coarsest grid's stencil into the dense matrix
// the Cholesky factorization consumes.
func denseFromGeom(g *geomGrid, mem *arena) *linalg.Matrix {
	m := linalg.NewMatrixWithData(g.n, g.n, mem.f64(g.n*g.n))
	s := g.strides()
	ix, iy, iz := 0, 0, 0
	for i := 0; i < g.n; i++ {
		m.Set(i, i, g.diag[i])
		if ix+1 < g.nd[0] {
			m.Set(i, i+1, g.off[0][i])
			m.Set(i+1, i, g.off[0][i])
		}
		if iy+1 < g.nd[1] {
			m.Set(i, i+s[1], g.off[1][i])
			m.Set(i+s[1], i, g.off[1][i])
		}
		if iz+1 < g.nd[2] {
			m.Set(i, i+s[2], g.off[2][i])
			m.Set(i+s[2], i, g.off[2][i])
		}
		if ix++; ix == g.nd[0] {
			ix = 0
			if iy++; iy == g.nd[1] {
				iy = 0
				iz++
			}
		}
	}
	return m
}
