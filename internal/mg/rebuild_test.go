package mg

import (
	"testing"

	"repro/internal/sparse"
)

// layeredContrast is layered2D with a tunable anisotropy contrast: every
// contrast produces the same sparsity pattern (the 5-point stencil never
// changes) but different operator values — the sweep-rebuild scenario.
func layeredContrast(nx, ny int, contrast float64) (*sparse.CSR, []int) {
	n := nx * ny
	kxy := func(iy int) (float64, float64) {
		if iy >= ny/2 {
			return 1, contrast
		}
		return contrast, 1
	}
	harm := func(a, b float64) float64 { return 2 * a * b / (a + b) }
	coo := sparse.NewCOO(n, n)
	diag := make([]float64, n)
	addFace := func(i, j int, kf float64) {
		coo.Add(i, j, -kf)
		coo.Add(j, i, -kf)
		diag[i] += kf
		diag[j] += kf
	}
	for iy := 0; iy < ny; iy++ {
		kx, ky := kxy(iy)
		for ix := 0; ix < nx; ix++ {
			i := iy*nx + ix
			if ix < nx-1 {
				addFace(i, i+1, kx)
			}
			if iy < ny-1 {
				_, ky2 := kxy(iy + 1)
				addFace(i, i+nx, harm(ky, ky2))
			}
			if iy == 0 {
				diag[i] += 2 * ky
			}
		}
	}
	for i, d := range diag {
		coo.Add(i, i, d)
	}
	return coo.ToCSR(), []int{nx, ny}
}

// cycleBits applies one V-cycle to a fixed pseudo-random residual and
// returns the result for bitwise comparison.
func cycleBits(t *testing.T, h *Hierarchy, n int, seed uint64) []float64 {
	t.Helper()
	r := make([]float64, n)
	fillRand(r, seed)
	z := make([]float64, n)
	h.Cycle(z, r, nil)
	return z
}

func sameBits(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: bit difference at %d: %v vs %v", what, i, a[i], b[i])
		}
	}
}

// TestRebuildMatchesFreshBuild is the re-Galerkin equivalence property: a
// hierarchy rebuilt through a donated predecessor's arena (Options.Prev)
// must be indistinguishable — level sizes and cycle output bits — from one
// built from nothing on the same matrix. Two recycled generations are
// checked so the second rebuild runs entirely off the free lists.
func TestRebuildMatchesFreshBuild(t *testing.T) {
	nx, ny := 48, 48
	n := nx * ny
	a1, dims := layeredContrast(nx, ny, 100)
	a2, _ := layeredContrast(nx, ny, 37)

	fresh2, err := Build(a2, dims, Options{})
	if err != nil {
		t.Fatalf("fresh Build(a2): %v", err)
	}
	want2 := cycleBits(t, fresh2, n, 7)

	donor, err := Build(a1, dims, Options{})
	if err != nil {
		t.Fatalf("Build(a1): %v", err)
	}
	re2, err := Build(a2, dims, Options{Prev: donor})
	if err != nil {
		t.Fatalf("recycled Build(a2): %v", err)
	}
	if got, want := re2.LevelSizes(), fresh2.LevelSizes(); len(got) != len(want) {
		t.Fatalf("recycled level sizes %v, fresh %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("recycled level sizes %v, fresh %v", got, want)
			}
		}
	}
	sameBits(t, "rebuild gen 1 cycle", cycleBits(t, re2, n, 7), want2)

	// Second generation: every allocation site should now find a recycled
	// array of exactly the right size.
	fresh1, err := Build(a1, dims, Options{})
	if err != nil {
		t.Fatalf("fresh Build(a1): %v", err)
	}
	re1, err := Build(a1, dims, Options{Prev: re2})
	if err != nil {
		t.Fatalf("recycled Build(a1) gen 2: %v", err)
	}
	sameBits(t, "rebuild gen 2 cycle", cycleBits(t, re1, n, 11), cycleBits(t, fresh1, n, 11))
}

// TestRebuildAcrossTopologyChange donates a hierarchy of a different size:
// the arena must serve what fits and allocate the rest, still bit-identical.
func TestRebuildAcrossTopologyChange(t *testing.T) {
	aSmall, dimsSmall := layeredContrast(24, 24, 100)
	donor, err := Build(aSmall, dimsSmall, Options{})
	if err != nil {
		t.Fatalf("Build small: %v", err)
	}
	aBig, dimsBig := layeredContrast(40, 40, 100)
	fresh, err := Build(aBig, dimsBig, Options{})
	if err != nil {
		t.Fatalf("fresh Build big: %v", err)
	}
	re, err := Build(aBig, dimsBig, Options{Prev: donor})
	if err != nil {
		t.Fatalf("recycled Build big: %v", err)
	}
	sameBits(t, "cross-topology rebuild cycle", cycleBits(t, re, 1600, 3), cycleBits(t, fresh, 1600, 3))
}
