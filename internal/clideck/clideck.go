// Package clideck wires the deck-sweep sharding flags shared by the ttsv
// command-line tools' -deck paths: -shard, -journal, -resume, -merge,
// -cache-dir and -progress. The flags lower into deck.SweepControl, so a
// sweep deck can be split across processes, checkpointed, killed, resumed
// and merged — with the merged report byte-identical to one uninterrupted
// run.
package clideck

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/deck"
	"repro/internal/sweep"
)

// Flags holds the parsed sweep-control flag values for one command run.
type Flags struct {
	shard    string
	journal  string
	resume   bool
	merge    string
	cacheDir string
	progress bool
}

// Register adds the sweep-control flags to fs and returns the holder to
// lower with Control after parsing.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.shard, "shard", "", `run one chain-aligned slice of the deck's .sweep, as 1-based "i/n" (e.g. "2/5")`)
	fs.StringVar(&f.journal, "journal", "", "checkpoint completed sweep points to this NDJSON file")
	fs.BoolVar(&f.resume, "resume", false, "replay the -journal file's completed points instead of re-solving them")
	fs.StringVar(&f.merge, "merge", "", "comma-separated shard journals to merge into the full report (no solving)")
	fs.StringVar(&f.cacheDir, "cache-dir", "", "persistent on-disk sweep result cache directory (shareable across runs and shards)")
	fs.BoolVar(&f.progress, "progress", false, "stream per-point NDJSON progress records to stderr")
	return f
}

// Set reports whether any sweep-control flag was given. The controls apply
// to a deck's .sweep analysis only, so commands reject them without -deck.
func (f *Flags) Set() bool {
	return f.shard != "" || f.journal != "" || f.resume || f.merge != "" || f.cacheDir != "" || f.progress
}

// Control lowers the parsed flags into the deck run's sweep controls.
// Progress records go to w — the CLIs pass stderr so the text report on
// stdout stays clean and redirectable.
func (f *Flags) Control(w io.Writer) (deck.SweepControl, error) {
	spec, err := sweep.ParseShardSpec(f.shard)
	if err != nil {
		return deck.SweepControl{}, fmt.Errorf("-shard: %w", err)
	}
	if f.resume && f.journal == "" {
		return deck.SweepControl{}, fmt.Errorf("-resume replays a checkpoint journal and requires -journal")
	}
	ctl := deck.SweepControl{
		Shard:       spec,
		JournalPath: f.journal,
		Resume:      f.resume,
		CacheDir:    f.cacheDir,
	}
	if f.merge != "" {
		for _, p := range strings.Split(f.merge, ",") {
			if p = strings.TrimSpace(p); p != "" {
				ctl.MergePaths = append(ctl.MergePaths, p)
			}
		}
	}
	if f.progress {
		enc := json.NewEncoder(w)
		var mu sync.Mutex
		ctl.Progress = func(p deck.SweepProgress) {
			mu.Lock()
			defer mu.Unlock()
			// Progress is best-effort diagnostics; a broken stderr pipe
			// must not abort the sweep it narrates.
			_ = enc.Encode(p)
		}
	}
	return ctl, nil
}
