package netlist

import (
	"math"
	"testing"
)

// rcNetwork builds a single RC: source q into a node with capacitance c,
// resistance r to a zero-temperature sink.
func rcNetwork(t *testing.T, r, c, q float64) (*Network, NodeID) {
	t.Helper()
	n := New()
	sink := n.Node("sink")
	hot := n.Node("hot")
	if err := n.Fix(sink, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddResistor("r", sink, hot, r); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource("q", hot, q); err != nil {
		t.Fatal(err)
	}
	if err := n.SetCapacitance(hot, c); err != nil {
		t.Fatal(err)
	}
	return n, hot
}

func TestTransientRCStepResponse(t *testing.T) {
	// Analytic: T(t) = qR(1 - exp(-t/RC)). With R = 2, C = 3, q = 5:
	// steady 10, time constant 6.
	const r, c, q = 2.0, 3.0, 5.0
	n, hot := rcNetwork(t, r, c, q)
	dt := 0.01
	steps := 6000 // t = 60 = 10 time constants
	sol, err := n.SolveTransient(dt, steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, tm := range sol.Times {
		want := q * r * (1 - math.Exp(-tm/(r*c)))
		got := sol.Temp(k, hot)
		// Backward Euler is first order; 1% of the steady value is ample
		// for dt = RC/600.
		if math.Abs(got-want) > 0.01*q*r {
			t.Fatalf("t=%g: T = %g, want %g", tm, got, want)
		}
	}
	if final := sol.Final()[hot]; math.Abs(final-q*r) > 1e-3 {
		t.Errorf("final %g, want %g", final, q*r)
	}
}

func TestTransientDecay(t *testing.T) {
	// No source, initial T = 7: pure exponential decay.
	n := New()
	sink := n.Node("sink")
	hot := n.Node("hot")
	n.Fix(sink, 0)
	n.AddResistor("r", sink, hot, 4)
	n.SetCapacitance(hot, 0.5) // tau = 2
	init := make([]float64, n.NumNodes())
	init[hot] = 7
	sol, err := n.SolveTransient(0.002, 2000, init) // t = 4 = 2 tau
	if err != nil {
		t.Fatal(err)
	}
	for k, tm := range sol.Times {
		want := 7 * math.Exp(-tm/2)
		if got := sol.Temp(k, hot); math.Abs(got-want) > 0.02 {
			t.Fatalf("t=%g: T = %g, want %g", tm, got, want)
		}
	}
}

func TestTransientReachesSteadyState(t *testing.T) {
	// A 3-node chain with mixed capacitances must converge to the static
	// solution.
	n := New()
	sink := n.Node("sink")
	a := n.Node("a")
	b := n.Node("b")
	n.Fix(sink, 27)
	n.AddResistor("r1", sink, a, 3)
	n.AddResistor("r2", a, b, 5)
	n.AddSource("qa", a, 0.5)
	n.AddSource("qb", b, 1.5)
	n.SetCapacitance(a, 2)
	n.SetCapacitance(b, 0.1)
	static, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	trans, err := n.SolveTransient(0.5, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	final := trans.Final()
	for _, id := range []NodeID{a, b} {
		if math.Abs(final[id]-static.Temp(id)) > 1e-6*(1+math.Abs(static.Temp(id))) {
			t.Errorf("node %v: transient final %g vs static %g", n.NodeName(id), final[id], static.Temp(id))
		}
	}
}

func TestTransientMasslessNodes(t *testing.T) {
	// A node without capacitance responds instantaneously (algebraic): in a
	// divider fed by a capacitive node it always sits at the interpolated
	// temperature.
	n := New()
	sink := n.Node("sink")
	mid := n.Node("mid") // massless
	top := n.Node("top") // capacitive
	n.Fix(sink, 0)
	n.AddResistor("r1", sink, mid, 1)
	n.AddResistor("r2", mid, top, 1)
	n.AddSource("q", top, 2)
	n.SetCapacitance(top, 10)
	sol, err := n.SolveTransient(0.05, 400, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range sol.Times {
		tTop := sol.Temp(k, top)
		tMid := sol.Temp(k, mid)
		// All heat flowing into top's capacitance passes mid: KCL at mid
		// gives T_mid = T_top/2 + ... actually with the source at top,
		// current through r2 = current through r1, so T_mid = T_top/2.
		if math.Abs(tMid-tTop/2) > 1e-9*(1+tTop) {
			t.Fatalf("step %d: massless node off: mid %g, top %g", k, tMid, tTop)
		}
	}
}

func TestTransientMonotoneHeating(t *testing.T) {
	// Step heating from zero: temperatures must rise monotonically.
	n, hot := rcNetwork(t, 3, 1, 1)
	sol, err := n.SolveTransient(0.1, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for k := range sol.Times {
		got := sol.Temp(k, hot)
		if got < prev-1e-12 {
			t.Fatalf("temperature dropped at step %d: %g after %g", k, got, prev)
		}
		prev = got
	}
}

func TestTransientSettlingTime(t *testing.T) {
	n, hot := rcNetwork(t, 2, 3, 5) // tau = 6
	sol, err := n.SolveTransient(0.05, 2400, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := sol.SettlingTime(hot, 0.02)
	if !ok {
		t.Fatal("never settled")
	}
	// 2% settling of a first-order system: t = tau·ln(50) ≈ 23.5.
	if ts < 18 || ts > 30 {
		t.Errorf("settling time %g, want ≈23.5", ts)
	}
	// A tight band on a short horizon does not settle.
	short, err := n.SolveTransient(0.05, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := short.SettlingTime(hot, 1e-9); ok {
		t.Error("settled within an implausible band")
	}
}

func TestTransientHistory(t *testing.T) {
	n, hot := rcNetwork(t, 1, 1, 1)
	sol, err := n.SolveTransient(0.1, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	times, temps := sol.History(hot)
	if len(times) != 5 || len(temps) != 5 {
		t.Fatalf("history lengths %d, %d", len(times), len(temps))
	}
	if math.Abs(times[4]-0.5) > 1e-12 {
		t.Errorf("last time %g", times[4])
	}
}

func TestTransientValidation(t *testing.T) {
	n, hot := rcNetwork(t, 1, 1, 1)
	if _, err := n.SolveTransient(0, 10, nil); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := n.SolveTransient(0.1, 0, nil); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := n.SolveTransient(0.1, 10, []float64{1}); err == nil {
		t.Error("short initial state accepted")
	}
	if err := n.SetCapacitance(hot, -1); err == nil {
		t.Error("negative capacitance accepted")
	}
	if err := n.SetCapacitance(NodeID(99), 1); err == nil {
		t.Error("capacitance on unknown node accepted")
	}
	// No reference node.
	m := New()
	a := m.Node("a")
	b := m.Node("b")
	m.AddResistor("r", a, b, 1)
	if _, err := m.SolveTransient(0.1, 10, nil); err == nil {
		t.Error("reference-free transient accepted")
	}
}

func TestTransientTimestepConvergence(t *testing.T) {
	// Halving dt must reduce the error against the analytic solution
	// (first-order convergence of backward Euler).
	const r, c, q = 1.0, 1.0, 1.0
	errAt := func(dt float64) float64 {
		n, hot := rcNetwork(t, r, c, q)
		steps := int(math.Round(2 / dt)) // simulate to t = 2
		sol, err := n.SolveTransient(dt, steps, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := q * r * (1 - math.Exp(-2/(r*c)))
		return math.Abs(sol.Final()[hot] - want)
	}
	e1 := errAt(0.2)
	e2 := errAt(0.1)
	e3 := errAt(0.05)
	if !(e2 < e1 && e3 < e2) {
		t.Fatalf("no convergence: %g, %g, %g", e1, e2, e3)
	}
	// Roughly first order: the ratio should be near 2.
	if ratio := e1 / e2; ratio < 1.5 || ratio > 3 {
		t.Errorf("convergence ratio %g, want ≈2", ratio)
	}
}
