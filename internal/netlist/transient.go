package netlist

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// SetCapacitance assigns a thermal capacitance (J/K) to a node for transient
// analysis. Nodes without a capacitance are treated as massless (algebraic)
// nodes; fixed-temperature nodes ignore their capacitance.
func (n *Network) SetCapacitance(node NodeID, c float64) error {
	if err := n.checkNode(node); err != nil {
		return fmt.Errorf("netlist: capacitance: %w", err)
	}
	if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return fmt.Errorf("netlist: capacitance %g J/K on node %q invalid", c, n.NodeName(node))
	}
	if n.capacitance == nil {
		n.capacitance = make(map[NodeID]float64)
	}
	n.capacitance[node] = c
	return nil
}

// TransientSolution holds a transient thermal simulation: node temperatures
// at every time step.
type TransientSolution struct {
	net *Network
	// Times lists the simulated instants, starting after the first step.
	Times []float64
	// Temps[k] holds all node temperatures at Times[k].
	Temps [][]float64
}

// SolveTransient integrates C·dT/dt = q - G·T with the implicit (backward)
// Euler method from the given initial node temperatures (nil means
// everything starts at the fixed-node temperature level, i.e. zero rise).
// The step size dt and step count must be positive. Heat sources are treated
// as switched on at t = 0 and constant (a step input).
//
// Backward Euler is unconditionally stable, so dt may exceed the smallest RC
// time constant; accuracy is first-order in dt.
func (n *Network) SolveTransient(dt float64, steps int, initial []float64) (*TransientSolution, error) {
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		return nil, fmt.Errorf("netlist: transient step %g must be positive and finite", dt)
	}
	if steps < 1 {
		return nil, fmt.Errorf("netlist: transient needs at least 1 step, got %d", steps)
	}
	if len(n.fixed) == 0 {
		return nil, ErrNoReference
	}
	if err := n.checkConnectivity(); err != nil {
		return nil, err
	}
	if initial != nil && len(initial) != len(n.nodeNames) {
		return nil, fmt.Errorf("netlist: initial state has %d entries, network has %d nodes",
			len(initial), len(n.nodeNames))
	}

	// Free-node indexing as in the static solve.
	attached := make([]bool, len(n.nodeNames))
	for _, r := range n.resistors {
		attached[r.A], attached[r.B] = true, true
	}
	freeIndex := make([]int, len(n.nodeNames))
	var freeNodes []NodeID
	for id := range n.nodeNames {
		if _, ok := n.fixed[NodeID(id)]; ok || !attached[id] {
			freeIndex[id] = -1
			continue
		}
		freeIndex[id] = len(freeNodes)
		freeNodes = append(freeNodes, NodeID(id))
	}
	nf := len(freeNodes)

	temps := make([]float64, len(n.nodeNames))
	for id, t := range n.fixed {
		temps[id] = t
	}
	if initial != nil {
		for i, id := range freeNodes {
			_ = i
			temps[id] = initial[id]
		}
	}
	if nf == 0 {
		sol := &TransientSolution{net: n}
		for k := 1; k <= steps; k++ {
			sol.Times = append(sol.Times, float64(k)*dt)
			sol.Temps = append(sol.Temps, append([]float64(nil), temps...))
		}
		return sol, nil
	}

	// Assemble the system matrix M = G + C/dt and the constant rhs
	// contribution, then factor once and reuse every step. Chain networks
	// (Model B) get the O(n·b²) banded factorization; everything else uses
	// dense Cholesky, which also verifies positive definiteness.
	caps := make([]float64, nf)
	for i, id := range freeNodes {
		caps[i] = n.capacitance[id]
	}
	rhs0 := make([]float64, nf)
	for _, s := range n.sources {
		if fi := freeIndex[s.node]; fi >= 0 {
			rhs0[fi] += s.q
		}
	}
	type factorization interface {
		Solve(b []float64) ([]float64, error)
	}
	var f factorization
	if bw, ok := bandwidth(n.resistors, freeIndex); ok {
		g := linalg.NewBanded(nf, bw)
		for _, r := range n.resistors {
			cond := 1 / r.R
			ia, ib := freeIndex[r.A], freeIndex[r.B]
			switch {
			case ia >= 0 && ib >= 0:
				g.Add(ia, ia, cond)
				g.Add(ib, ib, cond)
				g.Add(ia, ib, -cond)
				g.Add(ib, ia, -cond)
			case ia >= 0:
				g.Add(ia, ia, cond)
				rhs0[ia] += cond * temps[r.B]
			case ib >= 0:
				g.Add(ib, ib, cond)
				rhs0[ib] += cond * temps[r.A]
			}
		}
		for i := range caps {
			g.Add(i, i, caps[i]/dt)
		}
		lu, err := g.Factorize()
		if err != nil {
			return nil, fmt.Errorf("netlist: transient banded factorization: %w", err)
		}
		f = lu
	} else {
		g := linalg.NewMatrix(nf, nf)
		for _, r := range n.resistors {
			cond := 1 / r.R
			ia, ib := freeIndex[r.A], freeIndex[r.B]
			switch {
			case ia >= 0 && ib >= 0:
				g.Add(ia, ia, cond)
				g.Add(ib, ib, cond)
				g.Add(ia, ib, -cond)
				g.Add(ib, ia, -cond)
			case ia >= 0:
				g.Add(ia, ia, cond)
				rhs0[ia] += cond * temps[r.B]
			case ib >= 0:
				g.Add(ib, ib, cond)
				rhs0[ib] += cond * temps[r.A]
			}
		}
		for i := range caps {
			g.Add(i, i, caps[i]/dt)
		}
		ch, err := linalg.FactorizeCholesky(g)
		if err != nil {
			if !errors.Is(err, linalg.ErrNotSPD) {
				return nil, fmt.Errorf("netlist: transient factorization: %w", err)
			}
			return nil, fmt.Errorf("netlist: transient system not SPD (assembly bug?): %w", err)
		}
		f = ch
	}

	x := make([]float64, nf)
	for i, id := range freeNodes {
		x[i] = temps[id]
	}
	rhs := make([]float64, nf)
	sol := &TransientSolution{net: n}
	for k := 1; k <= steps; k++ {
		for i := range rhs {
			rhs[i] = rhs0[i] + caps[i]/dt*x[i]
		}
		next, err := f.Solve(rhs)
		if err != nil {
			return nil, fmt.Errorf("netlist: transient step %d: %w", k, err)
		}
		x = next
		for i, id := range freeNodes {
			temps[id] = x[i]
		}
		sol.Times = append(sol.Times, float64(k)*dt)
		sol.Temps = append(sol.Temps, append([]float64(nil), temps...))
	}
	return sol, nil
}

// Temp returns node's temperature at step k (0-based).
func (s *TransientSolution) Temp(k int, node NodeID) float64 {
	return s.Temps[k][node]
}

// Final returns the temperatures of the last step.
func (s *TransientSolution) Final() []float64 {
	return s.Temps[len(s.Temps)-1]
}

// History returns the (time, temperature) trace of one node.
func (s *TransientSolution) History(node NodeID) (times, temps []float64) {
	temps = make([]float64, len(s.Temps))
	for k := range s.Temps {
		temps[k] = s.Temps[k][node]
	}
	return s.Times, temps
}

// SettlingTime returns the first simulated time at which node stays within
// the given fraction of its final value (e.g. 0.02 for 2%). It returns the
// last time and false when the node never settles within the horizon.
func (s *TransientSolution) SettlingTime(node NodeID, fraction float64) (float64, bool) {
	final := s.Temps[len(s.Temps)-1][node]
	band := math.Abs(final) * fraction
	settledAt := -1
	for k := range s.Temps {
		if math.Abs(s.Temps[k][node]-final) <= band {
			if settledAt < 0 {
				settledAt = k
			}
		} else {
			settledAt = -1
		}
	}
	// The final sample always matches itself; settling only at the very last
	// instant means the trajectory was still moving, so report not settled.
	if settledAt < 0 || settledAt == len(s.Temps)-1 {
		return s.Times[len(s.Times)-1], false
	}
	return s.Times[settledAt], true
}
