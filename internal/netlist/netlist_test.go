package netlist

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestVoltageDividerAnalogy(t *testing.T) {
	// One source of 2 W through two series resistors (3 and 7 K/W) to a
	// 0-degree sink: node temperatures must be 20 and 14 degrees.
	n := New()
	sink := n.Node("sink")
	mid := n.Node("mid")
	top := n.Node("top")
	if err := n.Fix(sink, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddResistor("r1", sink, mid, 7); err != nil {
		t.Fatal(err)
	}
	if err := n.AddResistor("r2", mid, top, 3); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource("q", top, 2); err != nil {
		t.Fatal(err)
	}
	sol, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Temp(mid); math.Abs(got-14) > 1e-10 {
		t.Errorf("T(mid) = %g, want 14", got)
	}
	if got := sol.Temp(top); math.Abs(got-20) > 1e-10 {
		t.Errorf("T(top) = %g, want 20", got)
	}
}

func TestParallelResistors(t *testing.T) {
	// 1 W through two parallel 4 K/W resistors => 2 K rise.
	n := New()
	sink := n.Node("sink")
	hot := n.Node("hot")
	n.Fix(sink, 0)
	n.AddResistor("a", sink, hot, 4)
	n.AddResistor("b", hot, sink, 4)
	n.AddSource("q", hot, 1)
	sol, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Temp(hot); math.Abs(got-2) > 1e-10 {
		t.Errorf("T(hot) = %g, want 2", got)
	}
}

func TestNonZeroReference(t *testing.T) {
	n := New()
	sink := n.Node("sink")
	hot := n.Node("hot")
	n.Fix(sink, 27)
	n.AddResistor("r", sink, hot, 10)
	n.AddSource("q", hot, 0.5)
	sol, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Temp(hot); math.Abs(got-32) > 1e-10 {
		t.Errorf("T(hot) = %g, want 32", got)
	}
}

func TestNodeIdempotent(t *testing.T) {
	n := New()
	a := n.Node("x")
	b := n.Node("x")
	if a != b {
		t.Fatalf("Node(x) returned different ids %d, %d", a, b)
	}
	if n.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
	if n.NodeName(a) != "x" {
		t.Fatalf("NodeName = %q", n.NodeName(a))
	}
}

func TestErrNoReference(t *testing.T) {
	n := New()
	a := n.Node("a")
	b := n.Node("b")
	n.AddResistor("r", a, b, 1)
	n.AddSource("q", a, 1)
	if _, err := n.Solve(); !errors.Is(err, ErrNoReference) {
		t.Fatalf("err = %v, want ErrNoReference", err)
	}
}

func TestErrDisconnected(t *testing.T) {
	n := New()
	sink := n.Node("sink")
	a := n.Node("a")
	island1 := n.Node("i1")
	island2 := n.Node("i2")
	n.Fix(sink, 0)
	n.AddResistor("r", sink, a, 1)
	n.AddSource("qa", a, 1)
	n.AddResistor("ri", island1, island2, 1) // floating pair
	n.AddSource("qi", island1, 1)
	if _, err := n.Solve(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestIsolatedUnusedNodeTolerated(t *testing.T) {
	n := New()
	sink := n.Node("sink")
	a := n.Node("a")
	n.Node("never-used")
	n.Fix(sink, 0)
	n.AddResistor("r", sink, a, 1)
	n.AddSource("q", a, 1)
	if _, err := n.Solve(); err != nil {
		t.Fatalf("unused isolated node rejected: %v", err)
	}
}

func TestInvalidElements(t *testing.T) {
	n := New()
	a := n.Node("a")
	b := n.Node("b")
	if err := n.AddResistor("r", a, a, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := n.AddResistor("r", a, b, 0); err == nil {
		t.Error("zero resistance accepted")
	}
	if err := n.AddResistor("r", a, b, -1); err == nil {
		t.Error("negative resistance accepted")
	}
	if err := n.AddResistor("r", a, b, math.Inf(1)); err == nil {
		t.Error("infinite resistance accepted")
	}
	if err := n.AddResistor("r", a, NodeID(99), 1); err == nil {
		t.Error("unknown node accepted")
	}
	if err := n.AddSource("q", NodeID(99), 1); err == nil {
		t.Error("source on unknown node accepted")
	}
	if err := n.AddSource("q", a, math.NaN()); err == nil {
		t.Error("NaN source accepted")
	}
	if err := n.Fix(NodeID(99), 0); err == nil {
		t.Error("fixing unknown node accepted")
	}
}

func TestFlowAndEnergyBalance(t *testing.T) {
	n := New()
	sink := n.Node("sink")
	mid := n.Node("mid")
	top := n.Node("top")
	n.Fix(sink, 0)
	n.AddResistor("lower", sink, mid, 2)
	n.AddResistor("upper", mid, top, 5)
	n.AddSource("q", top, 3)
	sol, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// All 3 W must flow down through both resistors (A->B direction sign).
	f, err := sol.FlowByName("upper")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-(-3)) > 1e-10 { // mid -> top is A -> B, heat flows top->mid
		t.Errorf("flow(upper) = %g, want -3", f)
	}
	f, err = sol.FlowByName("lower")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-(-3)) > 1e-10 {
		t.Errorf("flow(lower) = %g, want -3", f)
	}
	if be := sol.EnergyBalanceError(); be > 1e-9 {
		t.Errorf("energy balance error %g", be)
	}
	if _, err := sol.FlowByName("nope"); err == nil {
		t.Error("unknown resistor name accepted")
	}
}

func TestMaxTemp(t *testing.T) {
	n := New()
	sink := n.Node("sink")
	a := n.Node("a")
	b := n.Node("b")
	n.Fix(sink, 0)
	n.AddResistor("ra", sink, a, 1)
	n.AddResistor("rb", sink, b, 10)
	n.AddSource("qa", a, 1)
	n.AddSource("qb", b, 1)
	sol, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	id, max := sol.MaxTemp()
	if id != b || math.Abs(max-10) > 1e-10 {
		t.Errorf("MaxTemp = (%v, %g), want (b, 10)", n.NodeName(id), max)
	}
}

func TestTempByName(t *testing.T) {
	n := New()
	sink := n.Node("sink")
	n.Fix(sink, 5)
	sol, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	got, err := sol.TempByName("sink")
	if err != nil || got != 5 {
		t.Fatalf("TempByName = %g, %v", got, err)
	}
	if _, err := sol.TempByName("ghost"); err == nil {
		t.Error("unknown name accepted")
	}
}

// ladder builds a 1-D resistor ladder with n rungs and unit elements; its
// closed-form solution is quadratic in the rung index.
func ladder(n int, q float64) (*Network, []NodeID) {
	net := New()
	prev := net.Node("sink")
	net.Fix(prev, 0)
	nodes := []NodeID{prev}
	for i := 0; i < n; i++ {
		cur := net.Node("n" + string(rune('0'+i%10)) + "_" + string(rune('a'+i/10%26)) + string(rune('a'+i/260)))
		net.AddResistor("r", prev, cur, 1)
		net.AddSource("q", cur, q)
		nodes = append(nodes, cur)
		prev = cur
	}
	return net, nodes
}

func TestLadderClosedForm(t *testing.T) {
	// With unit resistors and unit sources on every rung, the temperature at
	// rung k is sum_{j=1..k} (n - j + 1) = k*n - k(k-1)/2.
	const nr = 20
	net, nodes := ladder(nr, 1)
	sol, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= nr; k++ {
		want := float64(k*nr) - float64(k*(k-1))/2
		if got := sol.Temp(nodes[k]); math.Abs(got-want) > 1e-8 {
			t.Fatalf("rung %d: T = %g, want %g", k, got, want)
		}
	}
}

func TestDenseAndSparsePathsAgree(t *testing.T) {
	// Build a ladder long enough to trigger the sparse path and compare
	// against the closed form (which the dense path satisfies per the test
	// above).
	const nr = 700 // > denseCutoff
	net, nodes := ladder(nr, 0.001)
	sol, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, nr / 2, nr} {
		want := 0.001 * (float64(k*nr) - float64(k*(k-1))/2)
		if got := sol.Temp(nodes[k]); math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("sparse path rung %d: T = %g, want %g", k, got, want)
		}
	}
	if be := sol.EnergyBalanceError(); be > 1e-8 {
		t.Errorf("sparse path energy balance error %g", be)
	}
}

// Property: temperatures scale linearly with all source magnitudes.
func TestSolveLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New()
		sink := n.Node("sink")
		n.Fix(sink, 0)
		var nodes []NodeID
		nodes = append(nodes, sink)
		for i := 0; i < 12; i++ {
			id := n.Node(nm("n", i))
			// Attach to a random earlier node to keep everything connected.
			other := nodes[rng.Intn(len(nodes))]
			n.AddResistor(nm("r", i), other, id, 0.1+rng.Float64()*10)
			nodes = append(nodes, id)
		}
		// A few extra cross links.
		for i := 0; i < 5; i++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			if a != b {
				n.AddResistor(nm("x", i), a, b, 0.1+rng.Float64()*10)
			}
		}
		q := rng.Float64() * 5
		n.AddSource("q", nodes[len(nodes)-1], q)
		sol1, err := n.Solve()
		if err != nil {
			return false
		}

		// Rebuild with doubled source.
		n2 := New()
		sink2 := n2.Node("sink")
		n2.Fix(sink2, 0)
		for _, r := range n.resistors {
			n2.Node(n.NodeName(r.A))
			n2.Node(n.NodeName(r.B))
		}
		for _, r := range n.resistors {
			n2.AddResistor(r.Name, n2.Node(n.NodeName(r.A)), n2.Node(n.NodeName(r.B)), r.R)
		}
		n2.AddSource("q", n2.Node(n.NodeName(nodes[len(nodes)-1])), 2*q)
		sol2, err := n2.Solve()
		if err != nil {
			return false
		}
		for _, id := range nodes {
			t1 := sol1.Temp(id)
			t2, err := sol2.TempByName(n.NodeName(id))
			if err != nil {
				return false
			}
			if math.Abs(t2-2*t1) > 1e-8*(1+math.Abs(t1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: with non-negative sources and a zero reference, every
// temperature is non-negative (discrete maximum principle).
func TestNonNegativeTemperaturesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New()
		sink := n.Node("sink")
		n.Fix(sink, 0)
		nodes := []NodeID{sink}
		for i := 0; i < 15; i++ {
			id := n.Node(nm("n", i))
			other := nodes[rng.Intn(len(nodes))]
			n.AddResistor(nm("r", i), other, id, 0.5+rng.Float64()*3)
			if rng.Float64() < 0.7 {
				n.AddSource(nm("q", i), id, rng.Float64())
			}
			nodes = append(nodes, id)
		}
		sol, err := n.Solve()
		if err != nil {
			return false
		}
		for _, id := range nodes {
			if sol.Temp(id) < -1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTotalSource(t *testing.T) {
	n := New()
	a := n.Node("a")
	n.AddSource("q1", a, 2)
	n.AddSource("q2", a, -0.5)
	if got := n.TotalSource(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("TotalSource = %g", got)
	}
}

// nm builds small unique names without importing the fmt package in hot
// property loops.
func nm(prefix string, i int) string {
	return prefix + strconv.Itoa(i)
}

// Property: thermal networks are reciprocal — the temperature at node i due
// to unit heat injected at node j equals the temperature at j due to unit
// heat at i (symmetry of the conductance matrix's inverse).
func TestReciprocityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New()
		sink := n.Node("sink")
		n.Fix(sink, 0)
		nodes := []NodeID{sink}
		for i := 0; i < 10; i++ {
			id := n.Node(nm("n", i))
			other := nodes[rng.Intn(len(nodes))]
			if err := n.AddResistor(nm("r", i), other, id, 0.2+rng.Float64()*5); err != nil {
				return false
			}
			nodes = append(nodes, id)
		}
		// Extra cross links for non-trivial topology.
		for i := 0; i < 4; i++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			if a != b {
				n.AddResistor(nm("x", i), a, b, 0.2+rng.Float64()*5)
			}
		}
		i := nodes[1+rng.Intn(len(nodes)-1)]
		j := nodes[1+rng.Intn(len(nodes)-1)]
		if i == j {
			return true
		}
		solveWithSource := func(at NodeID) *Solution {
			m := New()
			m.Fix(m.Node("sink"), 0)
			for _, r := range n.resistors {
				m.AddResistor(r.Name, m.Node(n.NodeName(r.A)), m.Node(n.NodeName(r.B)), r.R)
			}
			m.AddSource("q", m.Node(n.NodeName(at)), 1)
			sol, err := m.Solve()
			if err != nil {
				return nil
			}
			return sol
		}
		si := solveWithSource(i)
		sj := solveWithSource(j)
		if si == nil || sj == nil {
			return false
		}
		tij, err1 := si.TempByName(n.NodeName(j))
		tji, err2 := sj.TempByName(n.NodeName(i))
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(tij-tji) <= 1e-9*(1+math.Abs(tij))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// grid builds an rows×cols grid network (bandwidth = cols under row-major
// ordering) with unit resistors and a source in one corner.
func grid(rows, cols int) (*Network, NodeID) {
	net := New()
	sink := net.Node("sink")
	net.Fix(sink, 0)
	ids := make([][]NodeID, rows)
	for r := 0; r < rows; r++ {
		ids[r] = make([]NodeID, cols)
		for c := 0; c < cols; c++ {
			ids[r][c] = net.Node(nm("g", r*cols+c))
			if c > 0 {
				net.AddResistor("h", ids[r][c-1], ids[r][c], 1)
			}
			if r > 0 {
				net.AddResistor("v", ids[r-1][c], ids[r][c], 1)
			}
		}
	}
	net.AddResistor("gnd", sink, ids[0][0], 1)
	net.AddSource("q", ids[rows-1][cols-1], 1)
	return net, ids[rows-1][cols-1]
}

// TestAllSolverPathsAgree forces the banded, dense and sparse paths onto
// grids of identical physics and checks they produce the same hot-node
// temperature. A 40×8 grid (bandwidth 8, 320 nodes) goes banded; adding one
// long-range resistor of huge resistance (physically negligible) breaks the
// bandwidth and forces dense; a 40×30 grid (1200 nodes, bandwidth 30) goes
// sparse and is compared against its own dense-forced twin.
func TestAllSolverPathsAgree(t *testing.T) {
	banded, hotB := grid(40, 8)
	solB, err := banded.Solve()
	if err != nil {
		t.Fatal(err)
	}

	dense, hotD := grid(40, 8)
	// A practically-open long-range resistor changes only the structure.
	dense.AddResistor("far", NodeID(1), NodeID(dense.NumNodes()-1), 1e12)
	solD, err := dense.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := solB.Temp(hotB), solD.Temp(hotD); math.Abs(a-b) > 1e-6*(1+a) {
		t.Fatalf("banded %g vs dense %g", a, b)
	}

	big, hotS := grid(40, 30) // sparse path
	solS, err := big.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Same grid forced dense via a negligible long-range resistor would
	// exceed denseCutoff too; instead check energy balance and a coarse
	// physical bound: all heat crosses the single ground resistor, so the
	// corner temperature exceeds 1 K (the ground drop) and stays finite.
	if be := solS.EnergyBalanceError(); be > 1e-7 {
		t.Fatalf("sparse path energy balance %g", be)
	}
	if v := solS.Temp(hotS); v < 1 || v > 1e4 {
		t.Fatalf("sparse path corner temperature %g implausible", v)
	}
}

func TestBandedPathMatchesClosedFormLadder(t *testing.T) {
	// The 700-rung ladder has bandwidth 1 and > 32 nodes: banded path.
	const nr = 700
	net, nodes := ladder(nr, 0.001)
	sol, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, nr / 2, nr} {
		want := 0.001 * (float64(k*nr) - float64(k*(k-1))/2)
		if got := sol.Temp(nodes[k]); math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("banded ladder rung %d: %g, want %g", k, got, want)
		}
	}
}

func TestAccessorsAndEdgeNames(t *testing.T) {
	n := New()
	a := n.Node("a")
	b := n.Node("b")
	n.AddResistor("r", a, b, 1)
	if n.NumResistors() != 1 {
		t.Errorf("NumResistors = %d", n.NumResistors())
	}
	if got := n.NodeName(NodeID(99)); !strings.Contains(got, "invalid") {
		t.Errorf("NodeName(99) = %q", got)
	}
	n.Fix(a, 0)
	sol, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Temp of unknown node did not panic")
		}
	}()
	sol.Temp(NodeID(99))
}
