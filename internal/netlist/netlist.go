// Package netlist implements a steady-state thermal resistive-network
// solver. Heat transfer in the lumped models of the paper is the exact
// analogue of a DC electrical circuit: heat flow plays the role of current,
// temperature the role of node voltage, and thermal resistance the role of
// electrical resistance. Both Model A's compact network (paper Fig. 2) and
// Model B's distributed π-segment chains (paper Fig. 3) are instances of the
// networks solved here.
//
// A network consists of named nodes, two-terminal thermal resistors, heat
// sources injecting a fixed heat flow (W) into a node, and fixed-temperature
// (Dirichlet) nodes. Solve assembles the nodal conductance system G·T = q
// over the free nodes and solves it densely (small networks) or with
// conjugate gradients (large networks).
package netlist

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// NodeID identifies a node within one Network.
type NodeID int

// Network is a thermal resistive network under construction.
type Network struct {
	nodeNames []string
	nodeIndex map[string]NodeID
	resistors []Resistor
	sources   []source
	fixed     map[NodeID]float64
	// capacitance holds per-node thermal capacitances (J/K) for transient
	// analysis; see SetCapacitance.
	capacitance map[NodeID]float64
}

// Resistor is a two-terminal thermal resistance between nodes A and B.
type Resistor struct {
	// Name identifies the element in reports (e.g. "R4", "plane2/liner").
	Name string
	// A and B are the terminal nodes.
	A, B NodeID
	// R is the thermal resistance in K/W; must be positive and finite.
	R float64
}

type source struct {
	name string
	node NodeID
	q    float64
}

// ErrNoReference is returned by Solve when the network has no
// fixed-temperature node: node temperatures would be defined only up to a
// constant.
var ErrNoReference = errors.New("netlist: network has no fixed-temperature node")

// ErrDisconnected is returned by Solve when some free node has no resistive
// path to any fixed-temperature node.
var ErrDisconnected = errors.New("netlist: node is not connected to any fixed-temperature node")

// New returns an empty network.
func New() *Network {
	return &Network{
		nodeIndex: make(map[string]NodeID),
		fixed:     make(map[NodeID]float64),
	}
}

// Node returns the node with the given name, creating it on first use.
func (n *Network) Node(name string) NodeID {
	if id, ok := n.nodeIndex[name]; ok {
		return id
	}
	id := NodeID(len(n.nodeNames))
	n.nodeNames = append(n.nodeNames, name)
	n.nodeIndex[name] = id
	return id
}

// NodeName returns the name of id.
func (n *Network) NodeName(id NodeID) string {
	if int(id) < 0 || int(id) >= len(n.nodeNames) {
		return fmt.Sprintf("<invalid node %d>", int(id))
	}
	return n.nodeNames[id]
}

// NumNodes returns the number of nodes created so far.
func (n *Network) NumNodes() int { return len(n.nodeNames) }

// NumResistors returns the number of resistors added so far.
func (n *Network) NumResistors() int { return len(n.resistors) }

// AddResistor connects a and b with a thermal resistance r (K/W).
func (n *Network) AddResistor(name string, a, b NodeID, r float64) error {
	if err := n.checkNode(a); err != nil {
		return fmt.Errorf("netlist: resistor %q: %w", name, err)
	}
	if err := n.checkNode(b); err != nil {
		return fmt.Errorf("netlist: resistor %q: %w", name, err)
	}
	if a == b {
		return fmt.Errorf("netlist: resistor %q connects node %q to itself", name, n.NodeName(a))
	}
	if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
		return fmt.Errorf("netlist: resistor %q has invalid resistance %g K/W", name, r)
	}
	n.resistors = append(n.resistors, Resistor{Name: name, A: a, B: b, R: r})
	return nil
}

// AddSource injects q watts of heat into node (negative q removes heat).
func (n *Network) AddSource(name string, node NodeID, q float64) error {
	if err := n.checkNode(node); err != nil {
		return fmt.Errorf("netlist: source %q: %w", name, err)
	}
	if math.IsInf(q, 0) || math.IsNaN(q) {
		return fmt.Errorf("netlist: source %q has invalid heat flow %g W", name, q)
	}
	n.sources = append(n.sources, source{name: name, node: node, q: q})
	return nil
}

// Fix pins node to the given temperature (the Dirichlet/heat-sink boundary).
func (n *Network) Fix(node NodeID, temp float64) error {
	if err := n.checkNode(node); err != nil {
		return fmt.Errorf("netlist: fix: %w", err)
	}
	n.fixed[node] = temp
	return nil
}

func (n *Network) checkNode(id NodeID) error {
	if int(id) < 0 || int(id) >= len(n.nodeNames) {
		return fmt.Errorf("unknown node id %d", int(id))
	}
	return nil
}

// denseCutoff is the free-node count above which Solve switches from dense
// LU to sparse conjugate gradients. The nodal conductance matrix is SPD, so
// CG applies; dense LU is faster (and exact) for the small networks of
// Model A and modestly segmented Model B instances.
const denseCutoff = 600

// maxBandedWidth is the largest half-bandwidth for which the banded direct
// solver is preferred over the dense/sparse paths.
const maxBandedWidth = 16

// bandwidth computes the free-index half-bandwidth of the network, or
// reports false when the structure is not narrow-banded (or trivially
// small, where the dense path's fixed costs win anyway).
func bandwidth(resistors []Resistor, freeIndex []int) (int, bool) {
	var bw, nf int
	for _, fi := range freeIndex {
		if fi >= 0 {
			nf++
		}
	}
	if nf < 32 {
		return 0, false
	}
	for _, r := range resistors {
		ia, ib := freeIndex[r.A], freeIndex[r.B]
		if ia < 0 || ib < 0 {
			continue
		}
		d := ia - ib
		if d < 0 {
			d = -d
		}
		if d > bw {
			bw = d
		}
	}
	return bw, bw <= maxBandedWidth
}

// Solution holds solved node temperatures and derived per-element flows.
type Solution struct {
	net   *Network
	temps []float64
	stats sparse.Stats
}

// SolverStats reports the iterative linear-solve statistics of the solve
// that produced this solution. It is zero when a direct solver (banded or
// dense LU) was used: direct factorizations have no iteration count.
func (s *Solution) SolverStats() sparse.Stats { return s.stats }

// Solve computes all node temperatures.
func (n *Network) Solve() (*Solution, error) {
	if len(n.fixed) == 0 {
		return nil, ErrNoReference
	}
	if err := n.checkConnectivity(); err != nil {
		return nil, err
	}

	// Index the free (non-fixed) nodes. Nodes without any attached resistor
	// would produce an all-zero matrix row; connectivity checking already
	// guarantees they carry no source either, so they stay at zero and are
	// excluded from the system.
	attached := make([]bool, len(n.nodeNames))
	for _, r := range n.resistors {
		attached[r.A], attached[r.B] = true, true
	}
	freeIndex := make([]int, len(n.nodeNames)) // node -> free slot, -1 when fixed/isolated
	var freeNodes []NodeID
	for id := range n.nodeNames {
		if _, ok := n.fixed[NodeID(id)]; ok || !attached[id] {
			freeIndex[id] = -1
			continue
		}
		freeIndex[id] = len(freeNodes)
		freeNodes = append(freeNodes, NodeID(id))
	}

	temps := make([]float64, len(n.nodeNames))
	for id, t := range n.fixed {
		temps[id] = t
	}
	nf := len(freeNodes)
	if nf == 0 {
		return &Solution{net: n, temps: temps}, nil
	}

	rhs := make([]float64, nf)
	for _, s := range n.sources {
		if fi := freeIndex[s.node]; fi >= 0 {
			rhs[fi] += s.q
		}
	}

	var x []float64
	var st sparse.Stats
	var err error
	if bw, ok := bandwidth(n.resistors, freeIndex); ok {
		// Chain-structured networks (Model B's π-segments) have a tiny
		// bandwidth under their natural node order; the banded LU solves
		// them in O(n·b²) — far cheaper than either dense LU or CG.
		g := linalg.NewBanded(nf, bw)
		for _, r := range n.resistors {
			cond := 1 / r.R
			ia, ib := freeIndex[r.A], freeIndex[r.B]
			switch {
			case ia >= 0 && ib >= 0:
				g.Add(ia, ia, cond)
				g.Add(ib, ib, cond)
				g.Add(ia, ib, -cond)
				g.Add(ib, ia, -cond)
			case ia >= 0:
				g.Add(ia, ia, cond)
				rhs[ia] += cond * temps[r.B]
			case ib >= 0:
				g.Add(ib, ib, cond)
				rhs[ib] += cond * temps[r.A]
			}
		}
		x, err = g.SolveBanded(rhs)
		if err != nil {
			return nil, fmt.Errorf("netlist: banded solve: %w", err)
		}
	} else if nf <= denseCutoff {
		g := linalg.NewMatrix(nf, nf)
		for _, r := range n.resistors {
			cond := 1 / r.R
			ia, ib := freeIndex[r.A], freeIndex[r.B]
			switch {
			case ia >= 0 && ib >= 0:
				g.Add(ia, ia, cond)
				g.Add(ib, ib, cond)
				g.Add(ia, ib, -cond)
				g.Add(ib, ia, -cond)
			case ia >= 0:
				g.Add(ia, ia, cond)
				rhs[ia] += cond * temps[r.B]
			case ib >= 0:
				g.Add(ib, ib, cond)
				rhs[ib] += cond * temps[r.A]
			}
		}
		// The grounded conductance matrix is SPD, but the general LU solver
		// is used here because it skips the zero multipliers of these
		// banded/sparse-patterned matrices, which a dense Cholesky cannot
		// (measured ~14x faster on Model B's chain networks). The transient
		// path, which factors once and reuses, uses Cholesky and thereby
		// also verifies positive definiteness.
		x, err = linalg.Solve(g, rhs)
		if err != nil {
			return nil, fmt.Errorf("netlist: dense solve: %w", err)
		}
	} else {
		coo := sparse.NewCOO(nf, nf)
		for _, r := range n.resistors {
			cond := 1 / r.R
			ia, ib := freeIndex[r.A], freeIndex[r.B]
			switch {
			case ia >= 0 && ib >= 0:
				coo.Add(ia, ia, cond)
				coo.Add(ib, ib, cond)
				coo.Add(ia, ib, -cond)
				coo.Add(ib, ia, -cond)
			case ia >= 0:
				coo.Add(ia, ia, cond)
				rhs[ia] += cond * temps[r.B]
			case ib >= 0:
				coo.Add(ib, ib, cond)
				rhs[ib] += cond * temps[r.A]
			}
		}
		x, st, err = sparse.SolveCG(coo.ToCSR(), rhs, sparse.Options{Tol: 1e-12, Precond: sparse.PrecondSSOR})
		if err != nil {
			return nil, fmt.Errorf("netlist: sparse solve: %w", err)
		}
	}
	for i, id := range freeNodes {
		temps[id] = x[i]
	}
	return &Solution{net: n, temps: temps, stats: st}, nil
}

// checkConnectivity verifies every node that participates in an element can
// reach a fixed node through resistors. Isolated nodes that have neither
// resistors nor sources are tolerated (they stay at temperature zero).
func (n *Network) checkConnectivity() error {
	adj := make([][]int, len(n.nodeNames))
	for _, r := range n.resistors {
		adj[r.A] = append(adj[r.A], int(r.B))
		adj[r.B] = append(adj[r.B], int(r.A))
	}
	reached := make([]bool, len(n.nodeNames))
	var queue []int
	for id := range n.fixed {
		reached[id] = true
		queue = append(queue, int(id))
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !reached[nb] {
				reached[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	// Any node carrying a source or resistor must be reached.
	needs := make([]bool, len(n.nodeNames))
	for _, r := range n.resistors {
		needs[r.A], needs[r.B] = true, true
	}
	for _, s := range n.sources {
		needs[s.node] = true
	}
	for id, need := range needs {
		if need && !reached[id] {
			return fmt.Errorf("%w: node %q", ErrDisconnected, n.nodeNames[id])
		}
	}
	return nil
}

// Temp returns the solved temperature of node.
func (s *Solution) Temp(node NodeID) float64 {
	if int(node) < 0 || int(node) >= len(s.temps) {
		panic(fmt.Sprintf("netlist: Temp of unknown node %d", int(node)))
	}
	return s.temps[node]
}

// TempByName returns the solved temperature of the named node.
func (s *Solution) TempByName(name string) (float64, error) {
	id, ok := s.net.nodeIndex[name]
	if !ok {
		return 0, fmt.Errorf("netlist: unknown node %q", name)
	}
	return s.temps[id], nil
}

// MaxTemp returns the maximum node temperature and the corresponding node.
func (s *Solution) MaxTemp() (NodeID, float64) {
	best := NodeID(0)
	max := math.Inf(-1)
	for id, t := range s.temps {
		if t > max {
			best, max = NodeID(id), t
		}
	}
	return best, max
}

// Flow returns the heat flow (W) through resistor r from terminal A to B.
func (s *Solution) Flow(r Resistor) float64 {
	return (s.temps[r.A] - s.temps[r.B]) / r.R
}

// FlowByName returns the heat flow through the first resistor with the
// given name.
func (s *Solution) FlowByName(name string) (float64, error) {
	for _, r := range s.net.resistors {
		if r.Name == name {
			return s.Flow(r), nil
		}
	}
	return 0, fmt.Errorf("netlist: unknown resistor %q", name)
}

// EnergyBalanceError returns the magnitude of the worst per-node heat-flow
// imbalance (W) over the free nodes — a direct residual check of the solve.
func (s *Solution) EnergyBalanceError() float64 {
	n := s.net
	imbalance := make([]float64, len(n.nodeNames))
	for _, src := range n.sources {
		imbalance[src.node] += src.q
	}
	for _, r := range n.resistors {
		f := s.Flow(r)
		imbalance[r.A] -= f
		imbalance[r.B] += f
	}
	var worst float64
	for id := range n.nodeNames {
		if _, fixedNode := n.fixed[NodeID(id)]; fixedNode {
			continue
		}
		if a := math.Abs(imbalance[id]); a > worst {
			worst = a
		}
	}
	return worst
}

// TotalSource returns the sum of all injected heat (W).
func (n *Network) TotalSource() float64 {
	var q float64
	for _, s := range n.sources {
		q += s.q
	}
	return q
}
